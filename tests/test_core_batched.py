"""Tests for the fleet solver (repro.core.batched).

The central claim: solving B instances in one block-diagonal batch is
*exactly* the same math as solving each instance alone — per-instance
solutions, residuals, convergence flags, and iteration counts all match
the solo :class:`ADMMSolver` runs.
"""

import numpy as np
import pytest

from repro.backends.serial import SerialBackend
from repro.core.batched import BatchedSolver, per_instance_residuals
from repro.core.parameters import ResidualBalancing, apply_rho_scale
from repro.core.residuals import compute_residuals
from repro.core.solver import ADMMSolver
from repro.core.state import ADMMState
from repro.graph.batch import replicate_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import DiagQuadProx


def quad_template():
    """One 2-D variable under a diagonal quadratic (target via param c)."""
    b = GraphBuilder()
    w = b.add_variable(2)
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [w],
        params={"q": np.ones(2), "c": np.zeros(2)},
    )
    return b.build()


def quad_batch(targets):
    overrides = [
        {0: {"c": -np.asarray(t, dtype=float)}} for t in targets
    ]
    return replicate_graph(quad_template(), len(targets), overrides)


def solo_quad_solver(target, **kwargs):
    b = GraphBuilder()
    w = b.add_variable(2)
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [w],
        params={"q": np.ones(2), "c": -np.asarray(target, dtype=float)},
    )
    return ADMMSolver(b.build(), **kwargs)


class TestBatchedMatchesIndividual:
    def test_b64_solutions_match_individual(self):
        """Acceptance: B=64 batched solutions == per-instance solves (1e-8)."""
        rng = np.random.default_rng(42)
        targets = rng.normal(size=(64, 2))
        batch = quad_batch(targets)
        solver = BatchedSolver(batch, rho=1.3)
        results = solver.solve_batch(
            max_iterations=60, check_every=10, init="zeros"
        )
        for target, result in zip(targets, results):
            solo = solo_quad_solver(target, rho=1.3).solve(
                max_iterations=60, check_every=10, init="zeros"
            )
            np.testing.assert_allclose(result.z, solo.z, atol=1e-8)
            assert result.converged == solo.converged
            assert result.iterations == solo.iterations

    def test_residuals_match_individual(self, chain_graph):
        batch = replicate_graph(chain_graph, 3)
        solver = BatchedSolver(batch, rho=1.4)
        results = solver.solve_batch(
            max_iterations=30, eps_abs=1e-14, eps_rel=1e-13,
            check_every=6, init="zeros",
        )
        solo = ADMMSolver(chain_graph, rho=1.4).solve(
            max_iterations=30, eps_abs=1e-14, eps_rel=1e-13,
            check_every=6, init="zeros",
        )
        for result in results:
            assert result.residuals is not None
            np.testing.assert_allclose(
                result.residuals.primal, solo.residuals.primal, rtol=1e-10
            )
            np.testing.assert_allclose(
                result.residuals.dual, solo.residuals.dual, rtol=1e-10
            )
            np.testing.assert_allclose(result.z, solo.z, atol=1e-10)
            assert len(result.history) == len(solo.history)

    def test_serial_backend_agrees_with_vectorized(self):
        targets = [[1.0, -2.0], [0.5, 3.0]]
        ref = BatchedSolver(quad_batch(targets), rho=2.0)
        got = BatchedSolver(quad_batch(targets), backend=SerialBackend(), rho=2.0)
        r1 = ref.solve_batch(max_iterations=20, check_every=5, init="zeros")
        r2 = got.solve_batch(max_iterations=20, check_every=5, init="zeros")
        for a, b in zip(r1, r2):
            np.testing.assert_allclose(a.z, b.z, atol=1e-12)


class TestPerInstanceResiduals:
    def test_matches_compute_residuals_per_instance(self, chain_graph):
        batch = replicate_graph(chain_graph, 4)
        state = ADMMState(batch.graph, rho=1.7).init_random(0.1, 0.9, seed=11)
        solver = ADMMSolver(batch.graph, rho=1.7)
        solver.state = state
        z_prev = state.z.copy()
        solver.backend.run(batch.graph, state, 1)
        batched = per_instance_residuals(batch, state, z_prev, 1e-6, 1e-4)
        # Reference: restrict the batched state to each instance's subgraph.
        for i in range(4):
            sub = ADMMState(chain_graph)
            sub.x[:] = state.x[batch.slot_index[i]]
            sub.u[:] = state.u[batch.slot_index[i]]
            sub.z[:] = state.z[batch.z_slice(i)]
            sub.set_rho(state.rho[batch.edge_index[i]])
            sub.iteration = state.iteration
            ref = compute_residuals(
                chain_graph, sub, z_prev[batch.z_slice(i)], 1e-6, 1e-4
            )
            assert batched[i].primal == pytest.approx(ref.primal, rel=1e-12)
            assert batched[i].dual == pytest.approx(ref.dual, rel=1e-12)
            assert batched[i].eps_primal == pytest.approx(ref.eps_primal, rel=1e-12)
            assert batched[i].eps_dual == pytest.approx(ref.eps_dual, rel=1e-12)


class TestStoppingMasks:
    def test_early_instance_freezes_but_keeps_sweeping(self):
        # Instance 0 starts at its optimum (target 0) and converges at the
        # first check; instance 1 must keep iterating much longer.
        batch = quad_batch([[0.0, 0.0], [8.0, -8.0]])
        solver = BatchedSolver(batch, rho=0.5)
        results = solver.solve_batch(
            max_iterations=400, check_every=5, init="zeros"
        )
        assert results[0].converged
        assert results[1].converged
        assert results[0].iterations < results[1].iterations
        # Frozen instances stop accumulating history.
        assert len(results[0].history) < len(results[1].history)

    def test_frozen_instance_rho_untouched_by_schedule(self):
        batch = quad_batch([[0.0, 0.0], [50.0, -50.0]])
        schedule = ResidualBalancing(mu=1.0001, tau=2.0)
        solver = BatchedSolver(batch, rho=100.0, schedule=schedule)
        results = solver.solve_batch(
            max_iterations=300, check_every=5, init="zeros"
        )
        rho_rows = batch.split_edges(solver.state.rho)
        assert np.allclose(rho_rows[0], 100.0), "frozen instance's rho moved"
        assert not np.allclose(rho_rows[1], 100.0), "schedule never fired"
        assert results[0].iterations < results[1].iterations

    def test_all_converged_stops_early(self):
        batch = quad_batch([[0.1, 0.0], [0.0, 0.1]])
        solver = BatchedSolver(batch, rho=1.0)
        results = solver.solve_batch(
            max_iterations=10_000, check_every=10, init="zeros"
        )
        assert all(r.converged for r in results)
        assert solver.state.iteration < 10_000

    def test_unconverged_instance_reports_cap(self):
        batch = quad_batch([[5.0, 5.0]])
        solver = BatchedSolver(batch, rho=1.0)
        (result,) = solver.solve_batch(
            max_iterations=3, check_every=10, init="zeros"
        )
        assert not result.converged
        assert result.iterations == 3


class TestWarmStartPool:
    def test_pool_roundtrip_forms(self, chain_graph):
        batch = replicate_graph(chain_graph, 3)
        solver = BatchedSolver(batch)
        zt = chain_graph.z_size
        pool = np.arange(3 * zt, dtype=float).reshape(3, zt)
        solver.warm_start_pool(pool)
        np.testing.assert_array_equal(batch.split_z(solver.state.z), pool)
        solver.warm_start_pool(list(pool))
        np.testing.assert_array_equal(batch.split_z(solver.state.z), pool)
        solver.warm_start_pool(pool[0])
        np.testing.assert_array_equal(
            batch.split_z(solver.state.z), np.stack([pool[0]] * 3)
        )

    def test_pool_smaller_than_fleet_cycles(self, chain_graph):
        """A pool of P < B solutions is cycled, not an index error."""
        batch = replicate_graph(chain_graph, 5)
        solver = BatchedSolver(batch)
        zt = chain_graph.z_size
        pool = np.arange(2 * zt, dtype=float).reshape(2, zt)
        solver.warm_start_pool(pool)
        np.testing.assert_array_equal(
            batch.split_z(solver.state.z), pool[[0, 1, 0, 1, 0]]
        )
        # Sequences cycle too, and a pool larger than B contributes its
        # first B rows.
        solver.warm_start_pool([pool[0]])
        np.testing.assert_array_equal(
            batch.split_z(solver.state.z), np.stack([pool[0]] * 5)
        )
        big = np.arange(7 * zt, dtype=float).reshape(7, zt)
        solver.warm_start_pool(big)
        np.testing.assert_array_equal(batch.split_z(solver.state.z), big[:5])

    def test_pool_shape_validation(self, chain_graph):
        batch = replicate_graph(chain_graph, 3)
        solver = BatchedSolver(batch)
        with pytest.raises(ValueError):
            solver.warm_start_pool(np.ones((2, chain_graph.z_size + 1)))
        with pytest.raises(ValueError):
            solver.warm_start_pool(np.ones((0, chain_graph.z_size)))

    def test_warm_start_from_solution_is_fixed_pointish(self):
        targets = [[1.0, 1.0], [2.0, -2.0]]
        batch = quad_batch(targets)
        solver = BatchedSolver(batch, rho=1.0)
        cold = solver.solve_batch(max_iterations=500, check_every=10, init="zeros")
        solver.warm_start_pool(np.stack([r.z for r in cold]))
        warm = solver.solve_batch(max_iterations=100, check_every=5, init="keep")
        for c, w in zip(cold, warm):
            np.testing.assert_allclose(w.z, c.z, atol=1e-5)


class TestContractsAndConfig:
    def test_zero_iterations_contract(self):
        batch = quad_batch([[1.0, 0.0], [0.0, 1.0]])
        solver = BatchedSolver(batch)
        results = solver.solve_batch(max_iterations=0, init="zeros")
        for r in results:
            assert r.iterations == 0
            assert not r.converged
            assert r.residuals is not None
            assert len(r.history) == 1

    def test_kept_iterate_past_cap_still_reports_residuals(self):
        """init="keep" on an iterate already past the cap follows the
        max_iterations=0 contract: one residual check, no sweeps."""
        batch = quad_batch([[1.0, 0.0], [0.0, 1.0]])
        solver = BatchedSolver(batch)
        solver.initialize("zeros")
        solver.iterate(10)
        results = solver.solve_batch(max_iterations=5, init="keep")
        for r in results:
            assert r.iterations == 10
            assert not r.converged
            assert r.residuals is not None
            assert len(r.history) == 1

    def test_invalid_args(self):
        solver = BatchedSolver(quad_batch([[1.0, 0.0]]))
        with pytest.raises(ValueError):
            solver.solve_batch(max_iterations=-1)
        with pytest.raises(ValueError):
            solver.solve_batch(check_every=0)

    def test_per_instance_rho_array(self):
        batch = quad_batch([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        solver = BatchedSolver(batch, rho=np.array([1.0, 2.0, 3.0]))
        rows = batch.split_edges(solver.state.rho)
        np.testing.assert_allclose(rows[:, 0], [1.0, 2.0, 3.0])

    def test_context_manager(self):
        with BatchedSolver(quad_batch([[1.0, 0.0]])) as solver:
            solver.solve_batch(max_iterations=5, init="zeros")


class TestApplyRhoScalePerEdge:
    def test_array_scale_rescales_dual(self, chain_graph):
        state = ADMMState(chain_graph, rho=2.0).init_random(seed=3)
        u_before = state.u.copy()
        scale = np.ones(chain_graph.num_edges)
        scale[0] = 4.0
        apply_rho_scale(state, scale)
        assert state.rho[0] == pytest.approx(8.0)
        assert state.rho[1] == pytest.approx(2.0)
        sl = chain_graph.edge_slots(0)
        np.testing.assert_allclose(state.u[sl], u_before[sl] / 4.0)

    def test_array_scale_validation(self, chain_graph):
        state = ADMMState(chain_graph)
        with pytest.raises(ValueError):
            apply_rho_scale(state, np.ones(3))
        with pytest.raises(ValueError):
            apply_rho_scale(state, np.full(chain_graph.num_edges, -1.0))

    def test_all_ones_is_noop(self, chain_graph):
        state = ADMMState(chain_graph, rho=2.0).init_random(seed=3)
        u = state.u.copy()
        apply_rho_scale(state, np.ones(chain_graph.num_edges))
        np.testing.assert_array_equal(state.u, u)
        assert np.all(state.rho == 2.0)
