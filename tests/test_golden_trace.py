"""Golden-trace regression: the solver's residual trajectory is pinned.

A fixed, fully-deterministic solve (figure-1 graph, vectorized backend,
seeded random init, constant ρ) is serialized into ``tests/data/``; every
future run must reproduce the primal/dual residual trajectory and the
final iterate.  Solver-math refactors that change results — even by more
than float-reassociation noise — fail here before they can silently drift.

Regenerate (after an *intentional* math change, with justification in the
commit message)::

    PYTHONPATH=src python tests/test_golden_trace.py

which rewrites ``tests/data/figure1_trace.json``.
"""

import json
import os

import numpy as np

from repro.backends.vectorized import VectorizedBackend
from repro.bench.workloads import figure1_graph
from repro.core.solver import ADMMSolver
from repro.core.stopping import MaxIterations

DATA_PATH = os.path.join(os.path.dirname(__file__), "data", "figure1_trace.json")

#: Reference-run configuration (all recorded into the trace file, so a
#: mismatch between code and data is detected rather than silently diffed).
CONFIG = {
    "graph": "figure1",
    "backend": "vectorized",
    "rho": 1.4,
    "alpha": 0.9,
    "seed": 2024,
    "max_iterations": 60,
    "check_every": 5,
}

#: Bitwise reproducibility is expected on one platform; the tolerance only
#: allows float reassociation across BLAS/NumPy builds.
RTOL = 1e-9
ATOL = 1e-12


def run_reference():
    graph = figure1_graph()
    solver = ADMMSolver(
        graph,
        backend=VectorizedBackend(),
        rho=CONFIG["rho"],
        alpha=CONFIG["alpha"],
    )
    result = solver.solve(
        max_iterations=CONFIG["max_iterations"],
        check_every=CONFIG["check_every"],
        stopping=MaxIterations(CONFIG["max_iterations"]),
        init="random",
        seed=CONFIG["seed"],
    )
    solver.close()
    return result


def test_trace_file_exists():
    assert os.path.exists(DATA_PATH), (
        f"golden trace missing; generate with: PYTHONPATH=src python {__file__}"
    )


def test_residual_trajectory_reproduces():
    with open(DATA_PATH) as fh:
        golden = json.load(fh)
    assert golden["config"] == CONFIG, (
        "trace config drifted from the recorded one; regenerate the golden "
        "file if the change is intentional"
    )
    result = run_reference()
    assert list(result.history.iterations) == golden["iterations"]
    np.testing.assert_allclose(
        result.history.primal_array(),
        np.asarray(golden["primal"]),
        rtol=RTOL,
        atol=ATOL,
        err_msg="primal residual trajectory drifted",
    )
    np.testing.assert_allclose(
        result.history.dual_array(),
        np.asarray(golden["dual"]),
        rtol=RTOL,
        atol=ATOL,
        err_msg="dual residual trajectory drifted",
    )
    np.testing.assert_allclose(
        result.z,
        np.asarray(golden["z_final"]),
        rtol=RTOL,
        atol=ATOL,
        err_msg="final iterate drifted",
    )


def test_trace_is_nontrivial():
    """Guard the guard: the stored trajectory actually decreases."""
    with open(DATA_PATH) as fh:
        golden = json.load(fh)
    primal = np.asarray(golden["primal"])
    assert len(primal) == CONFIG["max_iterations"] // CONFIG["check_every"]
    assert primal[-1] < primal[0]
    assert np.all(primal > 0)


def _generate():
    result = run_reference()
    payload = {
        "config": CONFIG,
        "iterations": [int(i) for i in result.history.iterations],
        "primal": [float(v) for v in result.history.primal],
        "dual": [float(v) for v in result.history.dual],
        "z_final": [float(v) for v in result.z],
    }
    os.makedirs(os.path.dirname(DATA_PATH), exist_ok=True)
    with open(DATA_PATH, "w") as fh:
        json.dump(payload, fh, indent=1)
    print(f"wrote {DATA_PATH}: {len(payload['primal'])} checks")


if __name__ == "__main__":
    _generate()
