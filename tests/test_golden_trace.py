"""Golden-trace regression: solver residual trajectories are pinned.

Fixed, fully-deterministic solves (vectorized backend, seeded random init,
constant ρ) are serialized into ``tests/data/``; every future run must
reproduce the primal/dual residual trajectory and the final iterate.
Solver-math refactors that change results — even by more than
float-reassociation noise — fail here before they can silently drift.

The golden set covers three workloads:

* ``figure1`` — the paper's Figure-1 graph (``figure1_trace.json``);
* ``mpc``     — the inverted-pendulum MPC graph (``mpc_trace.json``);
* ``svm``     — the two-Gaussian SVM training graph (``svm_trace.json``).

**Regeneration note**: only after an *intentional* solver-math change,
with justification in the commit message, regenerate ALL traces with::

    PYTHONPATH=src python tests/test_golden_trace.py

which rewrites every ``tests/data/*_trace.json``.  Each file records its
full run configuration, so a config drift between code and data is
detected rather than silently diffed.
"""

import json
import os

import numpy as np
import pytest

from repro.apps.mpc import default_problem
from repro.backends.vectorized import VectorizedBackend
from repro.bench.workloads import figure1_graph, svm_graph
from repro.core.solver import ADMMSolver
from repro.core.stopping import MaxIterations

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

#: Reference-run configurations (all recorded into the trace files, so a
#: mismatch between code and data is detected rather than silently diffed).
TRACES = {
    "figure1": {
        "file": "figure1_trace.json",
        "build": figure1_graph,
        "config": {
            "graph": "figure1",
            "backend": "vectorized",
            "rho": 1.4,
            "alpha": 0.9,
            "seed": 2024,
            "max_iterations": 60,
            "check_every": 5,
        },
    },
    "mpc": {
        "file": "mpc_trace.json",
        "build": lambda: default_problem(5).build_graph(),
        "config": {
            "graph": "mpc_pendulum_h5",
            "backend": "vectorized",
            "rho": 10.0,
            "alpha": 1.0,
            "seed": 77,
            "max_iterations": 60,
            "check_every": 5,
        },
    },
    "svm": {
        "file": "svm_trace.json",
        "build": lambda: svm_graph(20, dim=2, seed=3),
        "config": {
            "graph": "svm_blobs_n20_d2_s3",
            "backend": "vectorized",
            "rho": 2.0,
            "alpha": 1.0,
            "seed": 13,
            "max_iterations": 60,
            "check_every": 5,
        },
    },
}

#: Bitwise reproducibility is expected on one platform; the tolerance only
#: allows float reassociation across BLAS/NumPy builds.
RTOL = 1e-9
ATOL = 1e-12


def trace_path(name: str) -> str:
    return os.path.join(DATA_DIR, TRACES[name]["file"])


def run_reference(name: str):
    spec = TRACES[name]
    config = spec["config"]
    solver = ADMMSolver(
        spec["build"](),
        backend=VectorizedBackend(),
        rho=config["rho"],
        alpha=config["alpha"],
    )
    result = solver.solve(
        max_iterations=config["max_iterations"],
        check_every=config["check_every"],
        stopping=MaxIterations(config["max_iterations"]),
        init="random",
        seed=config["seed"],
    )
    solver.close()
    return result


@pytest.mark.parametrize("name", sorted(TRACES))
def test_trace_file_exists(name):
    assert os.path.exists(trace_path(name)), (
        f"golden trace {name!r} missing; generate with: "
        f"PYTHONPATH=src python {__file__}"
    )


@pytest.mark.parametrize("name", sorted(TRACES))
def test_residual_trajectory_reproduces(name):
    with open(trace_path(name)) as fh:
        golden = json.load(fh)
    assert golden["config"] == TRACES[name]["config"], (
        f"trace {name!r} config drifted from the recorded one; regenerate "
        "the golden file if the change is intentional"
    )
    result = run_reference(name)
    assert list(result.history.iterations) == golden["iterations"]
    np.testing.assert_allclose(
        result.history.primal_array(),
        np.asarray(golden["primal"]),
        rtol=RTOL,
        atol=ATOL,
        err_msg=f"{name}: primal residual trajectory drifted",
    )
    np.testing.assert_allclose(
        result.history.dual_array(),
        np.asarray(golden["dual"]),
        rtol=RTOL,
        atol=ATOL,
        err_msg=f"{name}: dual residual trajectory drifted",
    )
    np.testing.assert_allclose(
        result.z,
        np.asarray(golden["z_final"]),
        rtol=RTOL,
        atol=ATOL,
        err_msg=f"{name}: final iterate drifted",
    )


@pytest.mark.parametrize("name", sorted(TRACES))
def test_trace_is_nontrivial(name):
    """Guard the guard: the stored trajectory actually decreases."""
    with open(trace_path(name)) as fh:
        golden = json.load(fh)
    config = TRACES[name]["config"]
    primal = np.asarray(golden["primal"])
    assert len(primal) == config["max_iterations"] // config["check_every"]
    assert primal[-1] < primal[0]
    assert np.all(primal > 0)


def _generate():
    os.makedirs(DATA_DIR, exist_ok=True)
    for name in sorted(TRACES):
        result = run_reference(name)
        payload = {
            "config": TRACES[name]["config"],
            "iterations": [int(i) for i in result.history.iterations],
            "primal": [float(v) for v in result.history.primal],
            "dual": [float(v) for v in result.history.dual],
            "z_final": [float(v) for v in result.z],
        }
        with open(trace_path(name), "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"wrote {trace_path(name)}: {len(payload['primal'])} checks")


if __name__ == "__main__":
    _generate()
