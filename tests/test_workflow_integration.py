"""Cross-feature workflow tests: solver + serialization + validation together.

Mirrors how a downstream user chains the library's features: build once,
persist, reload elsewhere, resume with invariant checking, switch engines
mid-run.
"""

import numpy as np
import pytest

from repro.apps.packing import PackingProblem
from repro.backends.serial import SerialBackend
from repro.backends.validating import ValidatingBackend
from repro.backends.vectorized import VectorizedBackend
from repro.core.solver import ADMMSolver
from repro.core.state import ADMMState
from repro.core.stopping import MaxIterations
from repro.graph.io import load_graph, load_state, save_graph, save_state


class TestBuildPersistResume:
    def test_full_lifecycle(self, tmp_path):
        # 1. Build and partially solve.
        problem = PackingProblem(3)
        graph = problem.build_graph()
        state = problem.initial_state(graph, rho=3.0, seed=11)
        VectorizedBackend().run(graph, state, 500)
        # 2. Persist graph + checkpoint ("the graph can be reused").
        gpath, spath = str(tmp_path / "g.npz"), str(tmp_path / "s.npz")
        save_graph(gpath, graph)
        save_state(spath, state)
        # 3. Reload in a "new process" and resume under validation.
        graph2 = load_graph(gpath)
        state2 = load_state(spath, graph2)
        backend = ValidatingBackend(VectorizedBackend())
        backend.run(graph2, state2, 1500)
        # 4. Continue the original run the same amount; iterates must match.
        VectorizedBackend().run(graph, state, 1500)
        np.testing.assert_allclose(state2.z, state.z, atol=1e-10)
        # 5. The resumed run produces a valid packing.
        centers, radii = problem.extract(graph2, state2.z)
        assert problem.validate(centers, radii)["feasible"]

    def test_engine_switch_mid_run(self):
        """Serial for a while, then vectorized: identical to all-vectorized."""
        problem = PackingProblem(3)
        graph = problem.build_graph()
        mixed = problem.initial_state(graph, rho=3.0, seed=12)
        pure = mixed.copy()
        SerialBackend().run(graph, mixed, 10)
        VectorizedBackend().run(graph, mixed, 10)
        VectorizedBackend().run(graph, pure, 20)
        np.testing.assert_allclose(mixed.z, pure.z, atol=1e-11)

    def test_solver_over_reloaded_graph(self, tmp_path):
        problem = PackingProblem(2)
        graph = problem.build_graph()
        gpath = str(tmp_path / "g.npz")
        save_graph(gpath, graph)
        graph2 = load_graph(gpath)
        solver = ADMMSolver(graph2, rho=3.0)
        solver.state = problem.initial_state(graph2, rho=3.0, seed=13)
        result = solver.solve(
            max_iterations=800,
            stopping=MaxIterations(800),
            check_every=200,
            init="keep",
        )
        centers, radii = problem.extract(graph2, result.z)
        assert problem.validate(centers, radii)["feasible"]
