"""Cross-backend equivalence matrix (ISSUE 2 satellite).

The paper's parallelization claims correctness because the five kernels are
data-parallel: any scheduling of the element updates must produce the same
iterates.  This matrix pins that down exhaustively — every backend x every
canonical fixture, 25 iterations, all five auxiliary families compared
against the serial reference at 1e-10.

The three-weight backend is included because with no operator overriding
``outgoing_weights`` every weight equals ρ, which reduces the TWA z/u
updates to the classical ADMM — a strong algebraic identity worth guarding.

(``tests/test_backends.py`` keeps the randomized-graph and backend-detail
tests; this module is the systematic fixture matrix.)
"""

import numpy as np
import pytest

from repro.backends.persistent import PersistentWorkerBackend
from repro.backends.process import ProcessBackend
from repro.backends.serial import SerialBackend
from repro.backends.threaded import ThreadedBackend
from repro.backends.vectorized import ThreeWeightBackend, VectorizedBackend
from repro.bench.workloads import chain_graph, figure1_graph
from repro.core.state import ADMMState

ITERATIONS = 25
ATOL = 1e-10
FAMILIES = ("x", "m", "z", "u", "n")

BACKENDS = [
    ("vectorized", lambda: VectorizedBackend()),
    ("threaded", lambda: ThreadedBackend(num_workers=2)),
    ("persistent", lambda: PersistentWorkerBackend(num_workers=2)),
    ("process", lambda: ProcessBackend(num_workers=2)),
    ("three_weight", lambda: ThreeWeightBackend()),
]

GRAPHS = [
    ("figure1", figure1_graph),
    ("chain", chain_graph),
]


def run_all_families(graph, factory, iterations=ITERATIONS, seed=29):
    backend = factory()
    state = ADMMState(graph, rho=1.7, alpha=0.9).init_random(
        0.05, 0.95, seed=seed
    )
    try:
        backend.prepare(graph)
        backend.run(graph, state, iterations)
    finally:
        backend.close()
    return state


@pytest.fixture(scope="module")
def references():
    """Serial-backend iterates, one per fixture graph (shared by the matrix)."""
    out = {}
    for gname, graph_fn in GRAPHS:
        graph = graph_fn()
        out[gname] = (graph, run_all_families(graph, lambda: SerialBackend()))
    return out


@pytest.mark.parametrize("gname", [g for g, _ in GRAPHS])
@pytest.mark.parametrize("bname,factory", BACKENDS)
def test_equivalence_matrix(bname, factory, gname, references):
    graph, ref = references[gname]
    got = run_all_families(graph, factory)
    for family in FAMILIES:
        np.testing.assert_allclose(
            getattr(got, family),
            getattr(ref, family),
            atol=ATOL,
            err_msg=f"{bname} diverged from serial on {gname} family {family}",
        )
    assert got.iteration == ref.iteration == ITERATIONS


@pytest.mark.parametrize("gname,graph_fn", GRAPHS)
def test_three_weight_reduces_to_admm_every_iteration(gname, graph_fn):
    """TWA == ADMM at *every* iteration (not just after 25) with default weights."""
    graph = graph_fn()
    ref = ADMMState(graph, rho=2.2).init_random(0.1, 0.9, seed=5)
    twa = ref.copy()
    serial = SerialBackend()
    three = ThreeWeightBackend()
    for _ in range(8):
        serial.run(graph, ref, 1)
        three.run(graph, twa, 1)
        for family in FAMILIES:
            np.testing.assert_allclose(
                getattr(twa, family), getattr(ref, family), atol=ATOL
            )
