"""Smoke tests: every example script must run end to end.

Examples are executed in-process (imported as modules with patched argv)
at reduced sizes so the whole suite stays fast.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", []),
    ("examples/circle_packing.py", ["3"]),
    ("examples/mpc_pendulum.py", ["5"]),
    ("examples/svm_classification.py", ["24", "2"]),
    ("examples/lasso_consensus.py", ["60", "20", "4"]),
    ("examples/gpu_simulation.py", []),
    ("examples/three_weight_packing.py", ["3"]),
    ("examples/fleet_mpc.py", ["4", "5"]),
    ("examples/fleet_sharded.py", ["6", "4", "2"]),
    ("examples/fleet_rebalance.py", ["6", "4", "2"]),
    ("examples/fleet_service.py", ["6", "3", "5"]),
]


@pytest.mark.parametrize("path,argv", EXAMPLES, ids=[p for p, _ in EXAMPLES])
def test_example_runs(path, argv, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path, *argv])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path} printed nothing"


def test_quickstart_agreement_message(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/quickstart.py"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    assert "all backends agree" in capsys.readouterr().out


def test_packing_example_feasible(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/circle_packing.py", "3"])
    runpy.run_path("examples/circle_packing.py", run_name="__main__")
    assert "feasible:          True" in capsys.readouterr().out
