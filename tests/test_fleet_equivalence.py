"""Fleet equivalence matrix (ISSUE 4 satellite).

The batching subsystem's central claim, extended to the full fleet stack:
for every execution backend x {plain, sharded} x {classic, three-weight,
async} combination, solving ``B`` instances as one fleet is numerically
identical to solving each instance alone — per-instance iterates match a
solo solve at 1e-10 after a fixed iteration count.

The async cells work because fleet randomized sweeps draw *per-instance*
streams seeded by global instance index
(:class:`repro.core.async_admm.FleetSweepPlan`): instance ``i`` of the
fleet fires exactly the factors a solo :class:`RandomizedBackend` with
seed ``SEED + i`` fires, whether the fleet is sharded or not.

(``tests/test_backend_equivalence.py`` keeps the single-graph backend
matrix; this module is the fleet-level one.)
"""

import numpy as np
import pytest

from repro.backends.persistent import PersistentWorkerBackend
from repro.backends.process import ProcessBackend
from repro.backends.randomized import FleetRandomizedBackend, RandomizedBackend
from repro.backends.serial import SerialBackend
from repro.backends.threaded import ThreadedBackend
from repro.backends.vectorized import ThreeWeightBackend, VectorizedBackend
from repro.core.batched import BatchedSolver
from repro.core.sharded import ShardedBatchedSolver
from repro.core.solver import ADMMSolver
from repro.graph.batch import replicate_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import ConsensusEqualProx, DiagQuadProx

B = 4
ITERATIONS = 20
RHO = 1.7
ATOL = 1e-10
FRACTION = 0.6
SEED = 411

#: Per-instance targets for the 3 quadratic anchors of each instance.
TARGETS = np.random.default_rng(90).normal(size=(B, 3, 2))


def build_instance_graph(targets) -> "GraphBuilder":
    """Three 2-D variables chained by consensus, anchored by quadratics.

    Factor creation order is the template order — the same order the
    batched graph's per-instance index maps (and the async per-instance
    masks) use, so a graph built here is the exact solo reference for one
    fleet instance.
    """
    b = GraphBuilder()
    vs = b.add_variables(3, dim=2)
    dq = DiagQuadProx(dims=(2,))
    for v, t in zip(vs, targets):
        b.add_factor(
            dq, [v], params={"q": np.ones(2), "c": -np.asarray(t, dtype=float)}
        )
    ce = ConsensusEqualProx(k=2, dim=2)
    for i in range(2):
        b.add_factor(ce, [vs[i], vs[i + 1]])
    return b.build()


def build_fleet():
    template = build_instance_graph(TARGETS[0])
    overrides = [
        {j: {"c": -np.asarray(TARGETS[i, j], dtype=float)} for j in range(3)}
        for i in range(B)
    ]
    return replicate_graph(template, B, overrides)


def solo_backend(variant, instance):
    if variant == "classic":
        return VectorizedBackend()
    if variant == "three_weight":
        return ThreeWeightBackend()
    return RandomizedBackend(FRACTION, seed=SEED + instance)


@pytest.fixture(scope="module")
def solo_refs():
    """Per-variant solo iterates: the ground truth every fleet cell must hit."""
    out = {}
    for variant in ("classic", "three_weight", "async"):
        refs = []
        for i in range(B):
            solver = ADMMSolver(
                build_instance_graph(TARGETS[i]),
                backend=solo_backend(variant, i),
                rho=RHO,
            )
            solver.initialize("zeros")
            solver.iterate(ITERATIONS)
            refs.append((solver.state.z.copy(), solver.state.u.copy()))
            solver.close()
        out[variant] = refs
    return out


def assert_matches_solo(batch, z_flat, u_flat, refs, label):
    z_rows = batch.split_z(z_flat)
    u_rows = u_flat[batch.slot_index]
    for i, (z_ref, u_ref) in enumerate(refs):
        np.testing.assert_allclose(
            z_rows[i], z_ref, atol=ATOL,
            err_msg=f"{label}: instance {i} z diverged from solo solve",
        )
        np.testing.assert_allclose(
            u_rows[i], u_ref, atol=ATOL,
            err_msg=f"{label}: instance {i} dual diverged from solo solve",
        )


PLAIN_CELLS = [
    ("classic", "vectorized", lambda batch: VectorizedBackend()),
    ("classic", "serial", lambda batch: SerialBackend()),
    ("classic", "threaded", lambda batch: ThreadedBackend(num_workers=2)),
    ("classic", "persistent", lambda batch: PersistentWorkerBackend(num_workers=2)),
    ("classic", "process", lambda batch: ProcessBackend(num_workers=2)),
    ("three_weight", "three_weight", lambda batch: ThreeWeightBackend()),
    (
        "async",
        "fleet_randomized",
        lambda batch: FleetRandomizedBackend(batch, fraction=FRACTION, seed=SEED),
    ),
]


@pytest.mark.parametrize(
    "variant,bname,factory",
    PLAIN_CELLS,
    ids=[f"{v}-{b}" for v, b, _ in PLAIN_CELLS],
)
def test_plain_fleet_matches_solo(variant, bname, factory, solo_refs):
    batch = build_fleet()
    solver = BatchedSolver(batch, backend=factory(batch), rho=RHO)
    try:
        solver.initialize("zeros")
        solver.iterate(ITERATIONS)
        assert_matches_solo(
            batch,
            solver.state.z,
            solver.state.u,
            solo_refs[variant],
            f"plain/{bname}/{variant}",
        )
        assert solver.state.iteration == ITERATIONS
    finally:
        solver.close()


@pytest.mark.parametrize("mode", ["thread", "process"])
@pytest.mark.parametrize("variant", ["classic", "three_weight", "async"])
def test_sharded_fleet_matches_solo(mode, variant, solo_refs):
    batch = build_fleet()
    with ShardedBatchedSolver(
        batch,
        num_shards=2,
        mode=mode,
        variant=variant,
        rho=RHO,
        fraction=FRACTION,
        seed=SEED,
    ) as solver:
        solver.initialize("zeros")
        solver.iterate(ITERATIONS)
        z_rows = solver.split_z()
        for i, (z_ref, _) in enumerate(solo_refs[variant]):
            np.testing.assert_allclose(
                z_rows[i], z_ref, atol=ATOL,
                err_msg=(
                    f"sharded/{mode}/{variant}: instance {i} diverged from "
                    "solo solve"
                ),
            )
        # Duals shard by shard (each shard's sub-batch maps its own slots).
        for shard in solver.shards:
            u_rows = shard.state.u[shard.batch.slot_index]
            for j in range(shard.size):
                np.testing.assert_allclose(
                    u_rows[j], solo_refs[variant][shard.lo + j][1], atol=ATOL,
                    err_msg=(
                        f"sharded/{mode}/{variant}: instance {shard.lo + j} "
                        "dual diverged from solo solve"
                    ),
                )
        assert solver.iteration == ITERATIONS


def test_sharded_equals_plain_bitwise():
    """Sharding only moves sweeps across workers — iterates stay bitwise equal."""
    plain = BatchedSolver(build_fleet(), rho=RHO)
    plain.initialize("zeros")
    plain.iterate(ITERATIONS)
    with ShardedBatchedSolver(build_fleet(), num_shards=3, mode="thread", rho=RHO) as sh:
        sh.initialize("zeros")
        sh.iterate(ITERATIONS)
        np.testing.assert_array_equal(sh.fleet_z(), plain.state.z)
    plain.close()
