"""Tests for the extra proximal operators (Huber, simplex, entropy, logistic)."""

import numpy as np
import pytest
import scipy.optimize as sopt
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.prox.extras import EntropyProx, HuberProx, LogisticProx, SimplexProx

finite = st.floats(-8.0, 8.0, allow_nan=False, allow_infinity=False)


def brute_prox(h, n, rho):
    res = sopt.minimize_scalar(
        lambda t: h(t) + 0.5 * rho * (t - n) ** 2, bounds=(-50, 50), method="bounded",
        options={"xatol": 1e-12},
    )
    return res.x


class TestHuber:
    def test_quadratic_region(self):
        op = HuberProx(delta=10.0)
        out = op.prox(np.array([1.0]), np.array([1.0]), {})
        np.testing.assert_allclose(out, [0.5])  # rho n/(1+rho)

    def test_linear_region(self):
        op = HuberProx(delta=0.5)
        out = op.prox(np.array([10.0]), np.array([1.0]), {})
        np.testing.assert_allclose(out, [9.5])  # n - delta/rho

    @given(n=finite, rho=st.floats(0.3, 5.0), delta=st.floats(0.2, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, n, rho, delta):
        op = HuberProx(delta=delta)
        got = float(op.prox(np.array([n]), np.array([rho]), {})[0])

        def h(t):
            return 0.5 * t * t if abs(t) <= delta else delta * abs(t) - 0.5 * delta**2

        ref = brute_prox(h, n, rho)
        assert abs(got - ref) < 1e-5

    def test_evaluate(self):
        op = HuberProx(delta=1.0)
        assert op.evaluate(np.array([0.5]), {}) == pytest.approx(0.125)
        assert op.evaluate(np.array([3.0]), {}) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            HuberProx(delta=0.0)


class TestSimplex:
    def test_already_on_simplex(self):
        op = SimplexProx()
        n = np.array([[0.2, 0.3, 0.5]])
        np.testing.assert_allclose(op.prox_batch(n, np.ones((1, 1)), {}), n, atol=1e-12)

    def test_output_on_simplex(self):
        op = SimplexProx()
        rng = np.random.default_rng(0)
        n = rng.normal(scale=3.0, size=(20, 6))
        out = op.prox_batch(n, np.ones((20, 1)), {})
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(out >= -1e-12)

    def test_single_dominant_coordinate(self):
        op = SimplexProx()
        out = op.prox(np.array([10.0, 0.0, 0.0]), np.ones(1), {})
        np.testing.assert_allclose(out, [1.0, 0.0, 0.0], atol=1e-9)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_projection_optimality(self, data):
        op = SimplexProx()
        n = data.draw(hnp.arrays(np.float64, (4,), elements=finite))
        x = op.prox(n, np.ones(1), {})
        d_opt = np.sum((x - n) ** 2)
        rng = np.random.default_rng(1)
        for _ in range(50):
            c = rng.dirichlet(np.ones(4))
            assert np.sum((c - n) ** 2) >= d_opt - 1e-9

    def test_evaluate(self):
        op = SimplexProx()
        assert op.evaluate(np.array([0.5, 0.5]), {}) == 0.0
        assert op.evaluate(np.array([0.5, 0.6]), {}) == float("inf")


class TestEntropy:
    @given(n=st.floats(-3.0, 5.0), rho=st.floats(0.5, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_stationarity(self, n, rho):
        op = EntropyProx()
        x = float(op.prox(np.array([n]), np.array([rho]), {})[0])
        assert x > 0
        grad = np.log(x) + 1.0 + rho * (x - n)
        assert abs(grad) < 1e-8

    def test_output_positive_for_negative_input(self):
        op = EntropyProx()
        out = op.prox(np.array([-10.0]), np.array([1.0]), {})
        assert 0 < out[0] < 1e-3

    def test_evaluate(self):
        op = EntropyProx()
        assert op.evaluate(np.array([1.0]), {}) == pytest.approx(0.0)
        assert op.evaluate(np.array([-0.1]), {}) == float("inf")


class TestLogistic:
    @given(n=finite, rho=st.floats(0.2, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_stationarity(self, n, rho):
        op = LogisticProx()
        x = float(op.prox(np.array([n]), np.array([rho]), {})[0])
        import scipy.special as ssp

        grad = ssp.expit(x) + rho * (x - n)
        assert abs(grad) < 1e-10

    def test_matches_brute_force(self):
        op = LogisticProx()
        got = float(op.prox(np.array([2.0]), np.array([1.0]), {})[0])
        ref = brute_prox(lambda t: np.logaddexp(0.0, t), 2.0, 1.0)
        assert abs(got - ref) < 1e-6

    def test_batched_rows_independent(self):
        op = LogisticProx()
        n = np.array([[1.0, -1.0], [3.0, 0.0]])
        rho = np.ones((2, 1))
        batch = op.prox_batch(n, rho, {})
        for i in range(2):
            single = op.prox(n[i], np.ones(1), {})
            np.testing.assert_allclose(batch[i], single, atol=1e-12)

    def test_in_solver(self):
        """End to end: softplus + quadratic anchor has a unique optimum."""
        from repro.core.solver import ADMMSolver
        from repro.graph.builder import GraphBuilder
        from repro.prox.standard import DiagQuadProx

        b = GraphBuilder()
        w = b.add_variable(1)
        b.add_factor(LogisticProx(), [w])
        b.add_factor(DiagQuadProx(dims=(1,)), [w], params={"q": [1.0], "c": [-2.0]})
        res = ADMMSolver(b.build()).solve(max_iterations=2000, eps_abs=1e-10)
        # Optimum of log(1+e^x) + x^2/2 - 2x: grad = sigmoid(x) + x - 2 = 0.
        import scipy.special as ssp

        x = float(res.variable(0)[0])
        assert abs(ssp.expit(x) + x - 2.0) < 1e-4
