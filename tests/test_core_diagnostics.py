"""Tests for solve-time diagnostics (history, result formatting)."""

import numpy as np
import pytest

from repro.core.diagnostics import ADMMResult, SolveHistory
from repro.core.residuals import Residuals
from repro.core.solver import ADMMSolver
from repro.graph.builder import GraphBuilder
from repro.prox.standard import DiagQuadProx
from repro.utils.timing import KernelTimers


def residuals_at(it, primal=1.0, dual=0.5):
    return Residuals(
        primal=primal, dual=dual, eps_primal=1e-3, eps_dual=1e-3, iteration=it
    )


class TestSolveHistory:
    def test_append_and_len(self):
        h = SolveHistory()
        h.append(residuals_at(10), objective=2.0, rho_mean=1.0)
        h.append(residuals_at(20), objective=1.5, rho_mean=1.0)
        assert len(h) == 2
        assert h.iterations == [10, 20]
        assert h.objective == [2.0, 1.5]

    def test_objective_optional(self):
        # A check without an objective still consumes a row (nan), so every
        # series stays index-aligned with `iterations`.
        h = SolveHistory()
        h.append(residuals_at(5), objective=None, rho_mean=2.0)
        assert len(h.objective) == 1
        assert np.isnan(h.objective[0])
        assert h.rho == [2.0]

    def test_objective_stays_aligned_with_iterations(self):
        # Regression: mixed None/real objectives used to skip the None rows,
        # silently misaligning `objective[i]` with `iterations[i]`.
        h = SolveHistory()
        h.append(residuals_at(10), objective=None, rho_mean=1.0)
        h.append(residuals_at(20), objective=7.0, rho_mean=1.0)
        h.append(residuals_at(30), objective=None, rho_mean=1.0)
        assert len(h.objective) == len(h.iterations) == 3
        assert np.isnan(h.objective[0])
        assert h.objective[1] == 7.0
        assert np.isnan(h.objective[2])

    def test_arrays(self):
        h = SolveHistory()
        for i, p in enumerate((3.0, 2.0, 1.0)):
            h.append(residuals_at(i, primal=p, dual=p / 2), None, 1.0)
        np.testing.assert_array_equal(h.primal_array(), [3.0, 2.0, 1.0])
        np.testing.assert_array_equal(h.dual_array(), [1.5, 1.0, 0.5])


class TestADMMResult:
    def make_result(self, converged=True):
        return ADMMResult(
            solution=[np.array([1.0, 2.0]), np.array([3.0])],
            z=np.array([1.0, 2.0, 3.0]),
            converged=converged,
            iterations=123,
            residuals=residuals_at(123),
            history=SolveHistory(),
            timers=KernelTimers(),
            wall_time=0.5,
        )

    def test_variable_access(self):
        r = self.make_result()
        np.testing.assert_array_equal(r.variable(0), [1.0, 2.0])
        np.testing.assert_array_equal(r.variable(1), [3.0])

    def test_summary_converged(self):
        text = self.make_result(converged=True).summary()
        assert "converged" in text and "123" in text

    def test_summary_not_converged(self):
        text = self.make_result(converged=False).summary()
        assert "max-iterations" in text

    def test_solver_produces_consistent_result(self):
        b = GraphBuilder()
        w = b.add_variable(1)
        b.add_factor(DiagQuadProx(dims=(1,)), [w], params={"q": [1.0], "c": [-1.0]})
        res = ADMMSolver(b.build()).solve(max_iterations=200, check_every=10)
        assert res.iterations == res.residuals.iteration
        assert res.wall_time > 0
        assert res.timers.total > 0
        np.testing.assert_array_equal(res.solution[0], res.z)
