"""Churn stress suite: random add/remove/reshard/steal under solving (ISSUE 5).

Seeded random sequences of elastic and rebalancing operations — remove,
re-add, reshard, rebalance, steal — interleaved with solve segments on a
:class:`RebalancingShardedSolver`.  At every checkpoint, each instance
that has been continuously alive since the start must be **bit-identical**
(iterates, duals, penalties, residual histories) to the same instance in
an untouched reference :class:`BatchedSolver` fleet that never saw any
churn.  ε = 0 keeps every instance active so the two fleets sweep in
lockstep; a ResidualBalancing schedule exercises per-instance ρ migration.

The seed list is a matrix: CI gates on the defaults and runs extra seeds
via the ``REPRO_CHURN_SEEDS`` environment variable (comma-separated ints,
*replacing* the defaults so matrix steps never repeat each other's work).
"""

import os

import numpy as np
import pytest

from repro.core.batched import BatchedSolver
from repro.core.parameters import ResidualBalancing
from repro.core.rebalance import RebalancingShardedSolver
from repro.graph.batch import replicate_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import DiagQuadProx

DEFAULT_SEEDS = (0, 1, 2, 3, 4)


def churn_seeds():
    override = [
        int(tok)
        for tok in os.environ.get("REPRO_CHURN_SEEDS", "").split(",")
        if tok.strip()
    ]
    return override if override else list(DEFAULT_SEEDS)


def quad_template():
    b = GraphBuilder()
    w = b.add_variable(2)
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [w],
        params={"q": np.ones(2), "c": np.zeros(2)},
    )
    return b.build()


def overrides_for(targets):
    return [{0: {"c": -np.asarray(t, dtype=float)}} for t in targets]


def quad_fleet(targets):
    return replicate_graph(quad_template(), len(targets), overrides_for(targets))


def check_survivors(live, untouched, alive, res_live, res_ref):
    """Bit-identity of every continuously-alive instance at a checkpoint."""
    u_rows = live.family_rows("u")
    x_rows = live.family_rows("x")
    rho_rows = live.rho_rows()
    z_rows = live.split_z()
    for pos, (orig, continuous) in enumerate(alive):
        if not continuous:
            continue
        assert res_live[pos].history.primal == res_ref[orig].history.primal
        assert res_live[pos].history.dual == res_ref[orig].history.dual
        assert res_live[pos].history.rho == res_ref[orig].history.rho
        np.testing.assert_array_equal(res_live[pos].z, res_ref[orig].z)
        slot = untouched.batch.slot_index[orig]
        np.testing.assert_array_equal(u_rows[pos], untouched.state.u[slot])
        np.testing.assert_array_equal(x_rows[pos], untouched.state.x[slot])
        np.testing.assert_array_equal(
            rho_rows[pos],
            untouched.batch.split_edges(untouched.state.rho)[orig],
        )
        np.testing.assert_array_equal(
            z_rows[pos], untouched.batch.split_z(untouched.state.z)[orig]
        )


def apply_random_op(rng, live, alive, targets):
    """One random churn op; returns a log string.  Keeps >= 3 alive."""
    ops = ["reshard", "rebalance", "steal"]
    if len(alive) > 3:
        ops.append("remove")
    if len(alive) < len(targets) + 4:
        ops.append("add")
    op = ops[int(rng.integers(len(ops)))]
    if op == "remove":
        n_drop = int(rng.integers(1, len(alive) - 2))
        drop_pos = sorted(
            rng.choice(len(alive), size=n_drop, replace=False).tolist()
        )
        live.remove_instances(drop_pos)
        dropped = [alive[p] for p in drop_pos]
        alive[:] = [a for p, a in enumerate(alive) if p not in drop_pos]
        return f"remove {drop_pos} ({[d[0] for d in dropped]})"
    if op == "add":
        # Re-add a random original template as a cold (not compared) member.
        back = int(rng.integers(len(targets)))
        live.add_instances(overrides_for([targets[back]]))
        alive.append((back, False))
        return f"add back {back}"
    if op == "reshard":
        k = int(rng.integers(1, min(4, len(alive)) + 1))
        live.reshard(k)
        return f"reshard {k}"
    if op == "rebalance":
        mask = rng.random(len(alive)) < 0.6
        if not mask.any():
            mask[0] = True
        live.rebalance(active=mask)
        return f"rebalance {mask.astype(int).tolist()}"
    ev = live.steal_once()
    return f"steal {ev}"


@pytest.mark.parametrize("seed", churn_seeds())
def test_churn_sequence_keeps_survivors_bit_identical(seed):
    rng = np.random.default_rng(seed)
    B = 8
    targets = rng.normal(size=(B, 2)) + 1.0
    schedule = ResidualBalancing(mu=1.5, tau=2.0, max_updates=10)
    untouched = BatchedSolver(quad_fleet(targets), rho=1.3, schedule=schedule)
    live = RebalancingShardedSolver(
        quad_fleet(targets),
        num_shards=int(rng.integers(2, 5)),
        mode="thread",
        rho=1.3,
        schedule=schedule,
        steal_threshold=0,  # scripted churn below; auto-steal needs freezing
        steal_seed=seed,
    )

    alive = [(i, True) for i in range(B)]  # (original id, alive-since-start)
    log = []
    cap = 0
    try:
        for segment in range(4):
            cap += 9
            init = "zeros" if segment == 0 else "keep"
            res_ref = untouched.solve_batch(
                max_iterations=cap, eps_abs=0.0, eps_rel=0.0,
                check_every=3, init=init,
            )
            res_live = live.solve_batch(
                max_iterations=cap, eps_abs=0.0, eps_rel=0.0,
                check_every=3, init=init,
            )
            try:
                check_survivors(live, untouched, alive, res_live, res_ref)
            except AssertionError as err:  # pragma: no cover - diagnostics
                raise AssertionError(
                    f"checkpoint {segment} diverged after ops {log}: {err}"
                ) from err
            if segment == 3:
                break
            for _ in range(int(rng.integers(1, 3))):
                log.append(apply_random_op(rng, live, alive, targets))
    finally:
        untouched.close()
        live.close()


@pytest.mark.parametrize("seed", churn_seeds()[:2])
def test_churn_with_auto_stealing_and_convergence(seed):
    """Churn variant with real freezing: an uneven fleet solved to
    convergence with stealing enabled, reshard/rebalance between segments;
    results must stay bit-identical to the untouched fleet's solve."""
    rng = np.random.default_rng(1000 + seed)
    easy = np.zeros((3, 2))
    hard = rng.normal(size=(5, 2)) * 25.0
    targets = np.concatenate([easy, hard])
    plain = BatchedSolver(quad_fleet(targets), rho=1.1)
    live = RebalancingShardedSolver(
        quad_fleet(targets),
        num_shards=3,
        mode="thread",
        rho=1.1,
        steal_threshold=2,
        steal_seed=seed,
    )
    try:
        live.reshard(int(rng.integers(2, 5)))
        live.steal_once()
        ref = plain.solve_batch(max_iterations=250, check_every=5, init="zeros")
        got = live.solve_batch(max_iterations=250, check_every=5, init="zeros")
        assert live.steal_log, "uneven convergence fired no steals"
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a.z, b.z)
            assert a.iterations == b.iterations
            assert a.converged == b.converged
            assert a.history.primal == b.history.primal
    finally:
        plain.close()
        live.close()


@pytest.mark.parametrize("transport", ["shared", "queue"])
def test_churn_process_mode_smoke(transport):
    """One short churn on forked generic workers: reshard + steal + solve
    parity on both state transports (kept small — fork-heavy)."""
    targets = np.concatenate([np.zeros((2, 2)), np.full((4, 2), 9.0)])
    plain = BatchedSolver(quad_fleet(targets), rho=1.2)
    live = RebalancingShardedSolver(
        quad_fleet(targets),
        num_shards=2,
        mode="process",
        transport=transport,
        rho=1.2,
        steal_threshold=1,
    )
    try:
        live.initialize("zeros")
        plain.initialize("zeros")
        live.iterate(4)
        plain.iterate(4)
        live.reshard(3)
        live.steal_once()
        live.iterate(4)
        plain.iterate(4)
        np.testing.assert_array_equal(live.fleet_z(), plain.state.z)
        ref = plain.solve_batch(max_iterations=100, check_every=5, init="keep")
        got = live.solve_batch(max_iterations=100, check_every=5, init="keep")
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a.z, b.z)
            assert a.iterations == b.iterations
        stats = live.transport_stats()
        if transport == "shared":
            assert stats["queue_state_bytes"] == 0
            assert stats["queue_reply_bytes"] == 0
        else:
            assert stats["queue_state_bytes"] > 0
    finally:
        plain.close()
        live.close()
