"""Fleet-service tests: streaming admission/eviction vs solo solves.

The service contract under test: a request streamed through a live
:class:`FleetService` — admitted mid-flight into a fleet that is
simultaneously admitting others, evicting converged instances, stealing,
resharding, and recovering from worker crashes — returns a result
bit-identical to a dedicated :class:`BatchedSolver` solve of that request
alone with the same ``check_every``.  Traces are seeded and replayed on
the service's virtual segment clock (:mod:`repro.testing.traffic`), so
every test here is deterministic.
"""

import numpy as np
import pytest

from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum
from repro.core.batched import BatchedSolver
from repro.core.service import FleetService
from repro.core.supervision import WorkerPolicy
from repro.graph.batch import replicate_graph
from repro.testing.traffic import (
    TraceEntry,
    adversarial_trace,
    bursty_trace,
    closed_loop,
    poisson_trace,
    replay,
)

HORIZON = 3
ANCHOR = 2 * HORIZON + 1  # the q0-anchor factor id (see apps.mpc.build_batch)
RHO = 10.0
CHECK = 5
CAP = 60
TOL = 1e-10


@pytest.fixture(scope="module")
def template():
    A, B = inverted_pendulum()
    return build_batch(
        [MPCProblem(A=A, B=B, q0=np.zeros(4), horizon=HORIZON)]
    ).template


def make_params(rng, i):
    # Every other request starts at the target (converges at the first
    # check) so traces interleave fast evictions with grinding solves.
    if i % 2 == 0:
        return {}
    return {ANCHOR: {"c": rng.uniform(-0.3, 0.3, 4)}}


def solo_solve(template, params, cap=CAP, warm=None):
    """The dedicated-solver reference for one request."""
    batch = replicate_graph(template, 1, [dict(params)])
    with BatchedSolver(batch, rho=RHO) as solver:
        if warm is not None:
            solver.warm_start_pool([warm])
        return solver.solve_batch(
            max_iterations=cap,
            check_every=CHECK,
            init="keep" if warm is not None else "zeros",
        )[0]


def make_service(template, **kw):
    kw.setdefault("rho", RHO)
    kw.setdefault("num_shards", 2)
    kw.setdefault("check_every", CHECK)
    kw.setdefault("max_iterations", CAP)
    return FleetService(template, **kw)


class TestOpenLoopEquivalence:
    def test_64_request_poisson_trace_bit_identical_to_solo(self, template):
        """The acceptance trace: 64 open-loop Poisson arrivals, every
        result bit-identical (1e-10) to a dedicated BatchedSolver run."""
        trace = poisson_trace(64, rate=4.0, seed=0, make_params=make_params)
        with make_service(template) as service:
            results = replay(service, trace)
            stats = service.stats()
        assert sorted(results) == list(range(64))
        assert stats.completed == 64
        for rid in range(64):
            got = results[rid]
            ref = solo_solve(template, trace[rid].params)
            assert np.max(np.abs(ref.z - got.result.z)) <= TOL, rid
            assert ref.converged == got.result.converged
            assert ref.iterations == got.sweeps

    def test_replay_is_deterministic(self, template):
        trace = poisson_trace(16, rate=3.0, seed=7, make_params=make_params)
        runs = []
        for _ in range(2):
            with make_service(template) as service:
                runs.append(replay(service, trace))
        for rid in runs[0]:
            a, b = runs[0][rid], runs[1][rid]
            assert np.array_equal(a.result.z, b.result.z)
            assert a.sweeps == b.sweeps
            assert a.result.converged == b.result.converged

    def test_bursty_trace_admits_whole_burst_at_one_boundary(self, template):
        trace = bursty_trace(2, burst_size=4, gap=3, seed=1)
        with make_service(template, max_iterations=CHECK) as service:
            results = replay(service, trace)
        assert len(results) == 8
        for rid, entry in enumerate(trace):
            ref = solo_solve(template, entry.params, cap=CHECK)
            assert np.max(np.abs(ref.z - results[rid].result.z)) <= TOL

    def test_adversarial_mixed_caps(self, template):
        trace = adversarial_trace(
            12, seed=3, make_params=make_params,
            max_iterations_choices=(5, 20, 60),
        )
        with make_service(template) as service:
            results = replay(service, trace)
        for rid, entry in enumerate(trace):
            ref = solo_solve(template, entry.params, cap=entry.max_iterations)
            got = results[rid]
            assert np.max(np.abs(ref.z - got.result.z)) <= TOL, rid
            assert ref.iterations == got.sweeps


class TestWarmStartAndCaps:
    def test_warm_started_request_matches_solo_warm_start(self, template):
        hard = {ANCHOR: {"c": np.full(4, 0.3)}}
        z0 = solo_solve(template, hard, cap=20).z
        with make_service(template) as service:
            service.submit(params=hard, warm_start=z0)
            service.submit()  # cold companion: fleet churn around the warm one
            results = {r.request_id: r for r in service.drain()}
        ref = solo_solve(template, hard, warm=z0)
        got = results[0]
        assert np.max(np.abs(ref.z - got.result.z)) <= TOL
        assert ref.converged == got.result.converged
        assert ref.iterations == got.sweeps

    def test_cap_rounds_up_to_segment_grid(self, template):
        hard = {ANCHOR: {"c": np.full(4, 0.3)}}
        with make_service(template) as service:
            service.submit(params=hard, max_iterations=7)
            results = service.drain()
        assert results[0].sweeps == 10  # ceil(7/5)*5
        ref = solo_solve(template, hard, cap=10)
        assert np.max(np.abs(ref.z - results[0].result.z)) <= TOL

    def test_converged_requests_evict_at_first_check(self, template):
        with make_service(template) as service:
            service.submit()  # q0 = 0: already at the target
            results = service.drain()
        assert results[0].sweeps == CHECK
        assert results[0].result.converged


class TestChurnAndFaults:
    def test_reshard_and_rebalance_mid_flight(self, template):
        hard = [{ANCHOR: {"c": np.full(4, 0.2 + 0.05 * i)}} for i in range(6)]
        with make_service(template, num_shards=3) as service:
            for p in hard:
                service.submit(params=p)
            done = list(service.step())
            service.solver.reshard(2)
            done += service.step()
            service.solver.rebalance()
            done += service.drain()
        results = {r.request_id: r for r in done}
        for rid, p in enumerate(hard):
            ref = solo_solve(template, p)
            assert np.max(np.abs(ref.z - results[rid].result.z)) <= TOL, rid

    def test_worker_kill_mid_service_recovers_bit_identical(self, template):
        from repro.testing.faults import kill_worker

        hard = {ANCHOR: {"c": np.full(4, 0.3)}}
        policy = WorkerPolicy(
            heartbeat_interval=0.1,
            wait_timeout=15.0,
            poll_interval=0.1,
            max_restarts=2,
            backoff=0.05,
        )
        with make_service(
            template, mode="process", policy=policy
        ) as service:
            for _ in range(4):
                service.submit(params=hard)
            done = list(service.step())
            kill_worker(service.solver, 0)
            done += service.drain()
        results = {r.request_id: r for r in done}
        ref = solo_solve(template, hard)
        assert len(results) == 4
        for rid in range(4):
            assert np.max(np.abs(ref.z - results[rid].result.z)) <= TOL, rid


class TestAdmissionPolicy:
    def test_admit_every_batches_arrivals(self, template):
        hard = {ANCHOR: {"c": np.full(4, 0.3)}}
        with make_service(template, admit_every=3) as service:
            service.submit(params=hard)
            service.step()  # idle service admits immediately (segment 0)
            assert service.live == 1
            service.submit(params=hard)
            service.step()  # segment 1: not on the admit grid — still queued
            assert service.pending == 1
            service.step()  # segment 2
            assert service.pending == 1
            service.step()  # segment 3: admitted
            assert service.pending == 0 and service.live == 2
            service.drain()

    def test_max_batch_limits_admission_size(self, template):
        hard = {ANCHOR: {"c": np.full(4, 0.3)}}
        with make_service(template, max_batch=2) as service:
            for _ in range(5):
                service.submit(params=hard)
            service.step()
            assert service.live == 2 and service.pending == 3
            service.step()
            assert service.live == 4 and service.pending == 1
            service.drain()

    def test_closed_loop_driver_completes_target(self, template):
        with make_service(template) as service:
            results = closed_loop(
                service, num_requests=10, clients=3,
                make_params=make_params, seed=5, max_iterations=20,
            )
        assert len(results) == 10
        for rid, r in results.items():
            assert r.sweeps <= 20


class TestValidationAndStats:
    def test_degenerate_template_rejected(self):
        import warnings

        from repro.graph.builder import GraphBuilder
        from repro.prox.standard import ZeroProx

        b = GraphBuilder()
        b.add_variables(2, dim=1)
        b.add_factor(ZeroProx(), [0])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            g = b.build()
        with pytest.raises(ValueError, match="degenerate"):
            FleetService(g)

    def test_async_variant_rejected(self, template):
        with pytest.raises(ValueError, match="async"):
            FleetService(template, variant="async")

    def test_submit_validation(self, template):
        with make_service(template) as service:
            with pytest.raises(ValueError, match="warm_start"):
                service.submit(warm_start=np.zeros(3))
            with pytest.raises(ValueError, match="max_iterations"):
                service.submit(max_iterations=0)
        with pytest.raises(RuntimeError, match="closed"):
            service.submit()
        with pytest.raises(RuntimeError, match="closed"):
            service.step()

    def test_constructor_validation(self, template):
        with pytest.raises(ValueError, match="check_every"):
            FleetService(template, check_every=0)
        with pytest.raises(ValueError, match="admit_every"):
            FleetService(template, admit_every=0)
        with pytest.raises(ValueError, match="max_batch"):
            FleetService(template, max_batch=0)

    def test_stats_shape(self, template):
        trace = poisson_trace(8, rate=2.0, seed=2, make_params=make_params)
        with make_service(template) as service:
            assert service.stats().completed == 0
            replay(service, trace)
            stats = service.stats()
        assert stats.completed == 8
        assert 0 <= stats.p50_latency <= stats.p95_latency <= stats.p99_latency
        assert stats.p99_latency <= stats.max_latency
        assert stats.instances_per_sec > 0
        assert stats.sweeps_per_request_mean >= CHECK
        assert "p50" in stats.summary()

    def test_summary_and_wait_segments(self, template):
        hard = {ANCHOR: {"c": np.full(4, 0.3)}}
        with make_service(template, admit_every=2) as service:
            service.submit(params=hard)
            assert "pending=1" in service.summary()
            done = service.drain()
            assert "completed=1" in service.summary()
        assert done[0].wait_segments >= 0
        assert done[0].latency >= done[0].complete_time - done[0].submit_time - 1e-9

    def test_stats_empty_service_is_all_zero(self, template):
        with make_service(template) as service:
            stats = service.stats()
        assert stats.completed == 0
        assert stats.p50_latency == stats.p95_latency == stats.p99_latency == 0.0
        assert stats.mean_latency == stats.max_latency == 0.0
        assert stats.instances_per_sec == 0.0
        assert stats.sweeps_per_request_mean == 0.0

    def test_stats_single_completion_collapses_percentiles(self, template):
        with make_service(template) as service:
            service.submit(params=make_params(np.random.default_rng(0), 1))
            done = service.drain()
            stats = service.stats()
        lat = done[0].latency
        assert stats.completed == 1
        for v in (
            stats.p50_latency,
            stats.p95_latency,
            stats.p99_latency,
            stats.mean_latency,
            stats.max_latency,
        ):
            assert v == pytest.approx(lat)
        assert stats.sweeps_per_request_mean == done[0].sweeps

    def test_stats_two_completions_interpolate(self, template):
        rng = np.random.default_rng(5)
        with make_service(template) as service:
            service.submit(params=make_params(rng, 1))
            service.submit(params=make_params(rng, 3))
            done = service.drain()
            stats = service.stats()
        lats = sorted(r.latency for r in done)
        assert stats.completed == 2
        # numpy's linear interpolation: p50 of two samples is their mean,
        # higher percentiles slide toward (but never past) the max.
        assert stats.p50_latency == pytest.approx(np.mean(lats))
        assert stats.mean_latency == pytest.approx(np.mean(lats))
        assert (
            stats.p50_latency
            <= stats.p95_latency
            <= stats.p99_latency
            <= stats.max_latency + 1e-12
        )
        assert stats.max_latency == pytest.approx(lats[1])

    def test_stats_after_drain_is_a_pure_read(self, template):
        trace = poisson_trace(6, rate=2.0, seed=4, make_params=make_params)
        with make_service(template) as service:
            replay(service, trace)
            first = service.stats()
            again = service.stats()
            service.step()  # idle segment: only the clock moves
            after = service.stats()
        assert first == again
        assert after.completed == first.completed
        assert after.segments == first.segments + 1
        assert after.p99_latency == first.p99_latency
        assert after.max_latency == first.max_latency

    def test_stats_monotone_under_eviction_churn(self, template):
        rng = np.random.default_rng(9)
        with make_service(template) as service:
            for i in range(6):
                service.submit(params=make_params(rng, i))
            prev = service.stats()
            while service.pending or service.live:
                service.step()
                cur = service.stats()
                assert cur.completed >= prev.completed
                assert cur.segments == prev.segments + 1
                assert cur.max_latency >= prev.max_latency
                prev = cur
        assert prev.completed == 6


class TestTrafficGenerators:
    def test_poisson_trace_is_seed_deterministic(self):
        a = poisson_trace(20, rate=2.0, seed=9)
        b = poisson_trace(20, rate=2.0, seed=9)
        assert [e.arrival for e in a] == [e.arrival for e in b]
        arr = [e.arrival for e in a]
        assert arr == sorted(arr)
        assert poisson_trace(20, rate=2.0, seed=10) != a

    def test_bursty_trace_shape(self):
        t = bursty_trace(3, burst_size=2, gap=4, seed=0)
        assert [e.arrival for e in t] == [0, 0, 4, 4, 8, 8]

    def test_adversarial_trace_all_arrive_at_zero(self):
        t = adversarial_trace(5, seed=0, max_iterations_choices=(5, 10))
        assert all(e.arrival == 0 for e in t)
        assert all(e.max_iterations in (5, 10) for e in t)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(-1, rate=1.0)
        with pytest.raises(ValueError):
            poisson_trace(4, rate=0.0)
        with pytest.raises(ValueError):
            bursty_trace(1, burst_size=1, gap=-1)
        with pytest.raises(ValueError):
            TraceEntry(arrival=0) and closed_loop(None, 1, clients=0)
