"""Tests for block-diagonal graph replication (repro.graph.batch)."""

import numpy as np
import pytest

from repro.apps.mpc import default_problem
from repro.graph.batch import GraphBatch, replicate_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import ConsensusEqualProx, DiagQuadProx


class TestReplicateStructure:
    def test_counts_scale_linearly(self, chain_graph):
        batch = replicate_graph(chain_graph, 5)
        g = batch.graph
        assert g.num_vars == 5 * chain_graph.num_vars
        assert g.num_factors == 5 * chain_graph.num_factors
        assert g.num_edges == 5 * chain_graph.num_edges
        assert g.edge_size == 5 * chain_graph.edge_size
        assert g.z_size == 5 * chain_graph.z_size

    def test_groups_match_template_and_coalesce(self, chain_graph):
        batch = replicate_graph(chain_graph, 7)
        assert len(batch.graph.groups) == len(chain_graph.groups)
        for tg, bg in zip(chain_graph.groups, batch.graph.groups):
            assert bg.size == 7 * tg.size
            assert bg.slot_count == tg.slot_count
            assert bg.contiguous, "batched group lost the coalesced layout"

    def test_index_maps_are_permutations(self, mixed_dims_graph):
        B = 4
        batch = replicate_graph(mixed_dims_graph, B)
        for index, total in (
            (batch.factor_index, batch.graph.num_factors),
            (batch.edge_index, batch.graph.num_edges),
            (batch.slot_index, batch.graph.edge_size),
        ):
            flat = np.sort(index.reshape(-1))
            np.testing.assert_array_equal(flat, np.arange(total))

    def test_edges_stay_within_instance(self, figure1_graph):
        batch = replicate_graph(figure1_graph, 3)
        g = batch.graph
        V = figure1_graph.num_vars
        for i in range(3):
            vars_of_instance = g.edge_var[batch.edge_index[i]]
            assert np.all(vars_of_instance // V == i), (
                "an edge crosses instance boundaries — the batch is not "
                "block-diagonal"
            )

    def test_slot_index_consistent_with_edge_layout(self, chain_graph):
        batch = replicate_graph(chain_graph, 3)
        t, g = chain_graph, batch.graph
        for i in range(3):
            for e in range(t.num_edges):
                te = t.edge_slots(e)
                ge = g.edge_slots(int(batch.edge_index[i, e]))
                np.testing.assert_array_equal(
                    batch.slot_index[i, te], np.arange(ge.start, ge.stop)
                )

    def test_var_names_suffixed(self, figure1_graph):
        batch = replicate_graph(figure1_graph, 2)
        assert batch.graph.var_names[0] == "w1@0"
        assert batch.graph.var_names[figure1_graph.num_vars] == "w1@1"

    def test_batch_of_one(self, chain_graph):
        batch = replicate_graph(chain_graph, 1)
        assert batch.batch_size == 1
        assert batch.graph.num_elements == chain_graph.num_elements


class TestPerInstanceParams:
    def build_template(self):
        b = GraphBuilder()
        w = b.add_variable(2)
        b.add_factor(
            DiagQuadProx(dims=(2,)),
            [w],
            params={"q": np.ones(2), "c": np.zeros(2)},
        )
        return b.build()

    def test_overrides_reach_group_params(self):
        template = self.build_template()
        overrides = [
            {0: {"c": np.array([float(i), -float(i)])}} for i in range(3)
        ]
        batch = replicate_graph(template, 3, params_per_instance=overrides)
        (group,) = batch.graph.groups
        np.testing.assert_allclose(
            group.params["c"], [[0.0, 0.0], [1.0, -1.0], [2.0, -2.0]]
        )

    def test_unknown_key_rejected(self):
        template = self.build_template()
        with pytest.raises(ValueError, match="unknown parameter"):
            replicate_graph(template, 2, params_per_instance=[{0: {"bogus": 1.0}}, {}])

    def test_shape_mismatch_rejected(self):
        template = self.build_template()
        with pytest.raises(ValueError, match="shape"):
            replicate_graph(
                template, 2, params_per_instance=[{0: {"c": np.zeros(3)}}, {}]
            )

    def test_wrong_length_rejected(self):
        template = self.build_template()
        with pytest.raises(ValueError, match="params_per_instance"):
            replicate_graph(template, 3, params_per_instance=[{}])


class TestGraphBatchViews:
    def test_z_roundtrip(self, chain_graph):
        batch = replicate_graph(chain_graph, 4)
        rows = np.arange(4 * chain_graph.z_size, dtype=float).reshape(4, -1)
        flat = batch.pack_z(rows)
        np.testing.assert_array_equal(batch.split_z(flat), rows)
        np.testing.assert_array_equal(
            flat[batch.z_slice(2)], rows[2]
        )

    def test_pack_z_broadcast_single_vector(self, chain_graph):
        batch = replicate_graph(chain_graph, 3)
        one = np.arange(chain_graph.z_size, dtype=float)
        flat = batch.pack_z(one)
        np.testing.assert_array_equal(batch.split_z(flat), np.stack([one] * 3))

    def test_pack_z_bad_shape(self, chain_graph):
        batch = replicate_graph(chain_graph, 3)
        with pytest.raises(ValueError):
            batch.pack_z(np.zeros((2, chain_graph.z_size)))

    def test_split_slots_and_edges(self, figure1_graph):
        batch = replicate_graph(figure1_graph, 3)
        flat = np.arange(batch.graph.edge_size, dtype=float)
        rows = batch.split_slots(flat)
        assert rows.shape == (3, figure1_graph.edge_size)
        per_edge = np.arange(batch.graph.num_edges, dtype=float)
        erows = batch.split_edges(per_edge)
        assert erows.shape == (3, figure1_graph.num_edges)

    def test_instance_rho_scalar_per_instance(self, figure1_graph):
        batch = replicate_graph(figure1_graph, 3)
        rho = batch.instance_rho(np.array([1.0, 2.0, 3.0]))
        for i in range(3):
            np.testing.assert_allclose(rho[batch.edge_index[i]], float(i + 1))

    def test_instance_rho_bad_shape(self, figure1_graph):
        batch = replicate_graph(figure1_graph, 3)
        with pytest.raises(ValueError):
            batch.instance_rho(np.ones(4))

    def test_instance_solution_shapes(self):
        problem = default_problem(4)
        batch = replicate_graph(problem.build_graph(), 2)
        z = np.arange(batch.graph.z_size, dtype=float)
        sol = batch.instance_solution(z, 1)
        assert len(sol) == batch.template.num_vars
        np.testing.assert_array_equal(
            np.concatenate(sol), z[batch.z_slice(1)]
        )

    def test_instance_out_of_range(self, chain_graph):
        batch = replicate_graph(chain_graph, 2)
        with pytest.raises(IndexError):
            batch.z_slice(2)

    def test_summary_mentions_batch(self, chain_graph):
        batch = replicate_graph(chain_graph, 2)
        assert "B=2" in batch.summary()
        assert "all_contiguous=True" in batch.summary()


class TestFleetWorkloads:
    def test_mpc_fleet_builds(self):
        from repro.bench.workloads import mpc_fleet, mpc_fleet_problems

        batch = mpc_fleet(3, horizon=4)
        assert batch.batch_size == 3
        assert all(g.contiguous for g in batch.graph.groups)
        problems = mpc_fleet_problems(3, horizon=4)
        assert len(problems) == 3
        # Instances differ only in q0 (deterministic seeded draw).
        assert not np.allclose(problems[0].q0, problems[1].q0)

    def test_svm_fleet_builds(self):
        from repro.bench.workloads import svm_fleet

        batch = svm_fleet(2, n_points=6)
        assert batch.batch_size == 2
        assert all(g.contiguous for g in batch.graph.groups)

    def test_fleet_validation(self):
        from repro.bench.workloads import mpc_fleet, svm_fleet

        with pytest.raises(ValueError):
            mpc_fleet(0)
        with pytest.raises(ValueError):
            svm_fleet(0)


class TestReplicateValidation:
    def test_zero_batch_rejected(self, chain_graph):
        with pytest.raises(ValueError):
            replicate_graph(chain_graph, 0)

    def test_empty_template_rejected(self):
        b = GraphBuilder()
        b.add_variable(1)
        with pytest.raises(ValueError, match="empty template"):
            replicate_graph(b.build(), 2)

    def test_consensus_template(self):
        # Multi-variable factors replicate with correctly shifted scopes.
        b = GraphBuilder()
        vs = b.add_variables(3, dim=2)
        ce = ConsensusEqualProx(k=3, dim=2)
        dq = DiagQuadProx(dims=(2,))
        b.add_factor(ce, vs)
        for i, v in enumerate(vs):
            b.add_factor(dq, [v], params={"q": [1.0, 1.0], "c": [float(i), 0.0]})
        template = b.build()
        batch = replicate_graph(template, 4)
        spec = batch.graph.factors[int(batch.factor_index[3, 0])]
        assert spec.variables == (9, 10, 11)
