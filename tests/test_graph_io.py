"""Tests for graph/state serialization (build once, reuse forever)."""

import numpy as np
import pytest

from repro.apps.mpc import default_problem
from repro.apps.packing import PackingProblem
from repro.backends.vectorized import VectorizedBackend
from repro.core.state import ADMMState
from repro.graph.io import load_graph, load_state, save_graph, save_state


def roundtrip_graph(tmp_path, graph):
    path = str(tmp_path / "graph.npz")
    save_graph(path, graph)
    return load_graph(path)


class TestGraphRoundtrip:
    def test_structure_preserved(self, tmp_path, chain_graph):
        g2 = roundtrip_graph(tmp_path, chain_graph)
        assert g2.num_vars == chain_graph.num_vars
        assert g2.num_factors == chain_graph.num_factors
        np.testing.assert_array_equal(g2.edge_var, chain_graph.edge_var)
        np.testing.assert_array_equal(g2.var_dims, chain_graph.var_dims)
        assert g2.var_names == chain_graph.var_names

    def test_params_preserved(self, tmp_path, chain_graph):
        g2 = roundtrip_graph(tmp_path, chain_graph)
        for f1, f2 in zip(chain_graph.factors, g2.factors):
            assert sorted(f1.params) == sorted(f2.params)
            for k in f1.params:
                np.testing.assert_array_equal(f1.params[k], f2.params[k])

    def test_prox_identity_shared_within_family(self, tmp_path, chain_graph):
        g2 = roundtrip_graph(tmp_path, chain_graph)
        # Factors that shared an operator instance still do (same grouping).
        assert len(g2.groups) == len(chain_graph.groups)

    def test_iterates_identical_after_reload(self, tmp_path, chain_graph):
        g2 = roundtrip_graph(tmp_path, chain_graph)
        s1 = ADMMState(chain_graph, rho=1.4).init_random(seed=9)
        s2 = ADMMState(g2, rho=1.4).init_random(seed=9)
        VectorizedBackend().run(chain_graph, s1, 10)
        VectorizedBackend().run(g2, s2, 10)
        np.testing.assert_allclose(s1.z, s2.z, atol=1e-14)

    def test_packing_graph_roundtrip(self, tmp_path):
        g = PackingProblem(4).build_graph()
        g2 = roundtrip_graph(tmp_path, g)
        s1 = ADMMState(g, rho=3.0).init_random(seed=1)
        s2 = ADMMState(g2, rho=3.0).init_random(seed=1)
        VectorizedBackend().run(g, s1, 5)
        VectorizedBackend().run(g2, s2, 5)
        np.testing.assert_allclose(s1.z, s2.z, atol=1e-14)

    def test_mpc_graph_roundtrip(self, tmp_path):
        # Exercises instance-level constructor args (A matrix) persistence.
        g = default_problem(6).build_graph()
        g2 = roundtrip_graph(tmp_path, g)
        s1 = ADMMState(g, rho=2.0).init_random(seed=2)
        s2 = ADMMState(g2, rho=2.0).init_random(seed=2)
        VectorizedBackend().run(g, s1, 5)
        VectorizedBackend().run(g2, s2, 5)
        np.testing.assert_allclose(s1.z, s2.z, atol=1e-12)

    def test_custom_prox_via_lookup(self, tmp_path):
        from repro.graph.builder import GraphBuilder
        from repro.prox.standard import DiagQuadProx

        b = GraphBuilder()
        w = b.add_variable(1)
        b.add_factor(DiagQuadProx(dims=(1,)), [w], params={"q": [1.0], "c": [0.0]})
        g = b.build()
        path = str(tmp_path / "g.npz")
        save_graph(path, g)
        made = {}

        def factory(**kwargs):
            made["called"] = True
            return DiagQuadProx(dims=tuple(kwargs["dims"]))

        g2 = load_graph(path, prox_lookup={"diag_quad": factory})
        assert made.get("called")
        assert g2.num_factors == 1


class TestStateRoundtrip:
    def test_all_families_preserved(self, tmp_path, chain_graph):
        s = ADMMState(chain_graph, rho=1.7, alpha=0.8).init_random(seed=3)
        s.iteration = 42
        path = str(tmp_path / "state.npz")
        save_state(path, s)
        s2 = load_state(path, chain_graph)
        for fam in ("x", "m", "u", "n", "z", "rho", "alpha"):
            np.testing.assert_array_equal(getattr(s, fam), getattr(s2, fam))
        assert s2.iteration == 42

    def test_resume_continues_identically(self, tmp_path, chain_graph):
        s = ADMMState(chain_graph, rho=1.2).init_random(seed=4)
        VectorizedBackend().run(chain_graph, s, 5)
        path = str(tmp_path / "ckpt.npz")
        save_state(path, s)
        resumed = load_state(path, chain_graph)
        VectorizedBackend().run(chain_graph, s, 5)
        VectorizedBackend().run(chain_graph, resumed, 5)
        np.testing.assert_array_equal(s.z, resumed.z)

    def test_shape_mismatch_rejected(self, tmp_path, chain_graph, figure1_graph):
        s = ADMMState(chain_graph).init_random(seed=5)
        path = str(tmp_path / "s.npz")
        save_state(path, s)
        with pytest.raises(ValueError, match="does not match"):
            load_state(path, figure1_graph)
