"""Unit + property tests for work partitioning and rebalancing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import star_graph
from repro.graph.partition import (
    balanced_partition,
    balanced_variable_groups,
    chunk_loads,
    contiguous_chunks,
)


class TestContiguousChunks:
    def test_exact_division(self):
        assert contiguous_chunks(10, 2) == [(0, 5), (5, 10)]

    def test_remainder_goes_to_last(self):
        chunks = contiguous_chunks(10, 3)
        assert chunks[-1][1] == 10
        sizes = [t - s for s, t in chunks]
        assert sum(sizes) == 10

    def test_more_workers_than_items(self):
        chunks = contiguous_chunks(2, 5)
        covered = [i for s, t in chunks for i in range(s, t)]
        assert covered == [0, 1]

    def test_zero_items(self):
        assert all(s == t for s, t in contiguous_chunks(0, 4))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            contiguous_chunks(-1, 2)
        with pytest.raises(ValueError):
            contiguous_chunks(5, 0)

    @given(n=st.integers(0, 500), k=st.integers(1, 40))
    @settings(max_examples=60)
    def test_cover_and_disjoint(self, n, k):
        chunks = contiguous_chunks(n, k)
        assert len(chunks) == k
        covered = []
        for s, t in chunks:
            assert 0 <= s <= t <= n
            covered.extend(range(s, t))
        assert covered == list(range(n))


class TestBalancedPartition:
    def test_all_items_assigned_once(self):
        w = np.array([5.0, 3.0, 2.0, 2.0, 1.0])
        p = balanced_partition(w, 2)
        items = sorted(i for grp in p.groups for i in grp)
        assert items == [0, 1, 2, 3, 4]

    def test_makespan_bounds(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(0.1, 10.0, size=50)
        for k in (1, 2, 5, 8):
            p = balanced_partition(w, k)
            assert p.makespan >= w.max() - 1e-12
            assert p.makespan >= w.sum() / k - 1e-12
            # LPT guarantee: makespan <= lower bound + max item
            assert p.makespan <= w.sum() / k + w.max() + 1e-12

    def test_loads_match_groups(self):
        w = np.array([4.0, 1.0, 3.0])
        p = balanced_partition(w, 2)
        for grp, load in zip(p.groups, p.loads):
            assert abs(sum(w[i] for i in grp) - load) < 1e-12

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            balanced_partition(np.array([-1.0]), 2)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            balanced_partition(np.ones(3), 0)

    @given(
        weights=st.lists(st.floats(0.0, 100.0), min_size=0, max_size=60),
        k=st.integers(1, 10),
    )
    @settings(max_examples=60)
    def test_property_partition_is_exact_cover(self, weights, k):
        w = np.asarray(weights)
        p = balanced_partition(w, k)
        items = sorted(i for grp in p.groups for i in grp)
        assert items == list(range(len(weights)))
        assert abs(p.loads.sum() - w.sum()) < 1e-6 * max(1.0, w.sum())


class TestRebalancing:
    def test_star_graph_hub_imbalance_visible_in_chunks(self):
        g = star_graph(64)
        naive = chunk_loads(g.var_degree.astype(float), 4)
        # The hub (degree 64) lands in one chunk: makespan >> mean.
        assert naive.imbalance > 2.0

    def test_lpt_beats_contiguous_on_star(self):
        g = star_graph(64)
        w = g.var_degree.astype(float)
        naive = chunk_loads(w, 4)
        lpt = balanced_variable_groups(g, 4)
        assert lpt.makespan <= naive.makespan
        assert lpt.imbalance < naive.imbalance

    def test_balanced_variable_groups_on_uniform_graph(self, chain_graph):
        p = balanced_variable_groups(chain_graph, 3)
        # Near-uniform degrees -> near-perfect balance.
        assert p.imbalance < 1.5
