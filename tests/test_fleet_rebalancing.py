"""Unit + determinism tests for the work-stealing rebalancer (ISSUE 5).

The central claim extends the sharded solver's: moving instance ownership
between shards — stealing, live re-sharding, rebalancing, elastic roster
changes — changes *where* sweeps execute, never their math.  Stolen and
never-stolen instances produce identical iterates and residual traces
(1e-10, bitwise for the deterministic variants) across mode x variant
{classic, three_weight, async}, and steal decisions themselves are
deterministic and seeded.
"""

import numpy as np
import pytest

from repro.core.batched import BatchedSolver
from repro.core.parameters import ResidualBalancing
from repro.core.rebalance import RebalancingShardedSolver
from repro.graph.batch import replicate_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import DiagQuadProx


def quad_template():
    b = GraphBuilder()
    w = b.add_variable(2)
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [w],
        params={"q": np.ones(2), "c": np.zeros(2)},
    )
    return b.build()


def quad_batch(targets):
    overrides = [{0: {"c": -np.asarray(t, dtype=float)}} for t in targets]
    return replicate_graph(quad_template(), len(targets), overrides)


def uneven_targets(B=8, easy=3):
    """Fleet where ``easy`` instances start at their optimum (freeze at the
    first check) and the rest are far away — the skew that triggers
    stealing."""
    rng = np.random.default_rng(3)
    return np.concatenate(
        [np.zeros((easy, 2)), rng.normal(size=(B - easy, 2)) * 20.0]
    )


TARGETS = uneven_targets()
SOLVE = dict(max_iterations=200, check_every=5, init="zeros")


class TestConstruction:
    def test_validation(self):
        batch = quad_batch(TARGETS)
        with pytest.raises(ValueError, match="empty shards"):
            RebalancingShardedSolver(batch, num_shards=0)
        with pytest.raises(ValueError, match="empty shards"):
            RebalancingShardedSolver(batch, num_shards=9)
        with pytest.raises(ValueError):
            RebalancingShardedSolver(batch, mode="gpu")
        with pytest.raises(ValueError):
            RebalancingShardedSolver(batch, variant="quantum")
        with pytest.raises(ValueError):
            RebalancingShardedSolver(batch, steal_threshold=-1)
        with pytest.raises(ValueError):
            RebalancingShardedSolver(batch, rho=np.ones(3))

    def test_rosters_cover_fleet(self):
        with RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=3, mode="thread"
        ) as solver:
            rosters = solver.shard_rosters()
            assert sorted(g for r in rosters for g in r) == list(range(8))
            assert solver.batch_size == 8
            assert solver.num_shards == 3
            assert "steal_threshold" in solver.summary()
            assert solver.owner_of(0) == (0, 0)
            with pytest.raises(IndexError):
                solver.owner_of(99)

    def test_per_instance_rho_forms(self):
        rho_b = np.arange(1.0, 9.0)
        with RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread", rho=rho_b
        ) as solver:
            np.testing.assert_allclose(solver.rho_rows()[:, 0], rho_b)

    def test_reshard_validation(self):
        with RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        ) as solver:
            with pytest.raises(ValueError, match="empty shards"):
                solver.reshard(9)
            with pytest.raises(ValueError, match="empty shards"):
                solver.reshard(0)


@pytest.mark.parametrize(
    "mode,transport",
    [("thread", "shared"), ("process", "shared"), ("process", "queue")],
)
class TestStealingParity:
    def test_solve_with_steals_bitwise_equals_batched(self, mode, transport):
        plain = BatchedSolver(quad_batch(TARGETS), rho=1.1)
        ref = plain.solve_batch(**SOLVE)
        with RebalancingShardedSolver(
            quad_batch(TARGETS),
            num_shards=3,
            mode=mode,
            transport=transport,
            rho=1.1,
            steal_threshold=2,
        ) as solver:
            got = solver.solve_batch(**SOLVE)
            assert solver.steal_log, "uneven fleet fired no steals"
            stolen = {g for ev in solver.steal_log for g in ev.instances}
            assert stolen, "steal events carried no instances"
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a.z, b.z)
            assert a.converged == b.converged
            assert a.iterations == b.iterations
            assert a.history.primal == b.history.primal
            assert a.history.dual == b.history.dual
            assert a.residuals.primal == b.residuals.primal
        plain.close()

    def test_iterate_with_live_resharding_bitwise_equal(self, mode, transport):
        plain = BatchedSolver(quad_batch(TARGETS), rho=1.4)
        plain.initialize("zeros")
        plain.iterate(17)
        with RebalancingShardedSolver(
            quad_batch(TARGETS),
            num_shards=2,
            mode=mode,
            transport=transport,
            rho=1.4,
        ) as solver:
            solver.initialize("zeros")
            solver.iterate(5)
            solver.reshard(4)
            solver.iterate(4)
            solver.steal_once()
            solver.rebalance(
                active=np.array([1, 0, 1, 0, 1, 1, 0, 1], dtype=bool)
            )
            solver.iterate(8)
            np.testing.assert_array_equal(solver.fleet_z(), plain.state.z)
            assert solver.iteration == 17
        plain.close()


@pytest.mark.parametrize("variant", ["classic", "three_weight", "async"])
class TestVariantStealingDeterminism:
    """Stolen vs never-stolen instances: identical traces at 1e-10."""

    def reference(self, variant):
        batch = quad_batch(TARGETS)
        if variant == "classic":
            with BatchedSolver(batch, rho=1.2) as s:
                return s.solve_batch(**SOLVE)
        if variant == "three_weight":
            from repro.core.three_weight import solve_batch_twa

            return solve_batch_twa(batch, rho=1.2, **SOLVE)
        from repro.core.async_admm import solve_batch_async

        return solve_batch_async(batch, fraction=0.7, seed=11, rho=1.2, **SOLVE)

    def test_stolen_trajectories_match_plain(self, variant):
        ref = self.reference(variant)
        with RebalancingShardedSolver(
            quad_batch(TARGETS),
            num_shards=3,
            mode="thread",
            variant=variant,
            rho=1.2,
            fraction=0.7,
            seed=11,
            steal_threshold=2,
        ) as solver:
            got = solver.solve_batch(**SOLVE)
            assert solver.steal_log, f"{variant}: no steals fired"
        for a, b in zip(got, ref):
            np.testing.assert_allclose(a.z, b.z, atol=1e-10)
            assert a.iterations == b.iterations
            assert a.converged == b.converged
            np.testing.assert_allclose(
                a.history.primal, b.history.primal, atol=1e-10
            )
            np.testing.assert_allclose(a.history.dual, b.history.dual, atol=1e-10)

    def test_steal_decisions_are_seeded_deterministic(self, variant):
        def run(steal_seed):
            with RebalancingShardedSolver(
                quad_batch(TARGETS),
                num_shards=3,
                mode="thread",
                variant=variant,
                rho=1.2,
                fraction=0.7,
                seed=11,
                steal_threshold=2,
                steal_seed=steal_seed,
            ) as solver:
                results = solver.solve_batch(**SOLVE)
                return solver.steal_log, results

        log_a, res_a = run(42)
        log_b, res_b = run(42)
        assert log_a == log_b, "same steal seed must reproduce decisions"
        log_c, res_c = run(43)
        # A different steal seed may permute decisions but never results.
        for a, b, c in zip(res_a, res_b, res_c):
            np.testing.assert_array_equal(a.z, b.z)
            np.testing.assert_array_equal(a.z, c.z)
            assert a.iterations == b.iterations == c.iterations


class TestScheduleParity:
    def test_schedule_adapts_only_stragglers(self):
        targets = np.array([[0.0, 0.0], [40.0, -40.0], [30.0, 30.0]])
        schedule = ResidualBalancing(mu=1.0001, tau=2.0)
        plain = BatchedSolver(quad_batch(targets), rho=100.0, schedule=schedule)
        ref = plain.solve_batch(max_iterations=300, check_every=5, init="zeros")
        with RebalancingShardedSolver(
            quad_batch(targets),
            num_shards=2,
            mode="thread",
            rho=100.0,
            schedule=schedule,
            steal_threshold=1,
        ) as solver:
            got = solver.solve_batch(max_iterations=300, check_every=5, init="zeros")
            rows = solver.rho_rows()
            assert np.allclose(rows[0], 100.0), "frozen instance's rho moved"
            assert not np.allclose(rows[1], 100.0), "schedule never fired"
        for a, b in zip(got, ref):
            assert a.iterations == b.iterations
            np.testing.assert_array_equal(a.z, b.z)
        plain.close()


class TestContracts:
    def test_zero_iterations_contract(self):
        with RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        ) as solver:
            results = solver.solve_batch(max_iterations=0, init="zeros")
            for r in results:
                assert r.iterations == 0
                assert not r.converged
                assert r.residuals is not None
                assert len(r.history) == 1

    def test_invalid_args(self):
        with RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        ) as solver:
            with pytest.raises(ValueError):
                solver.solve_batch(max_iterations=-1)
            with pytest.raises(ValueError):
                solver.solve_batch(check_every=0)
            with pytest.raises(ValueError):
                solver.iterate(-1)
            with pytest.raises(ValueError):
                solver.initialize("magic")
            with pytest.raises(ValueError):
                solver.family_rows("w")
            with pytest.raises(ValueError):
                solver.rebalance(active=np.ones(3, dtype=bool))

    def test_warm_start_pool_cycles_across_rosters(self):
        with RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        ) as solver:
            solver.steal_once(active=np.ones(8, dtype=bool))  # balanced: no-op
            solver.reshard(3)
            zt = solver.batch.template.z_size
            pool = np.arange(3 * zt, dtype=float).reshape(3, zt)
            solver.warm_start_pool(pool)
            np.testing.assert_array_equal(
                solver.split_z(), pool[np.arange(8) % 3]
            )

    def test_random_init_stable_under_resharding(self):
        a = RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        )
        a.initialize("random", seed=5)
        rows_a = a.split_z()
        a.reshard(4)
        a.initialize("random", seed=5)
        np.testing.assert_array_equal(a.split_z(), rows_a)
        a.close()

    def test_worker_error_closes_solver_thread(self):
        from repro.core.parameters import apply_rho_scale

        b = GraphBuilder()
        w = b.add_variable(2)
        b.add_factor(
            DiagQuadProx(dims=(2,)),
            [w],
            params={"q": np.full(2, -0.5), "c": np.zeros(2)},
        )
        batch = replicate_graph(b.build(), 2)
        solver = RebalancingShardedSolver(batch, num_shards=2, mode="thread")
        solver.iterate(2)
        for sh in solver.shards:
            apply_rho_scale(sh.state, 0.2)  # rho -> 0.2 < |q|: prox undefined
        with pytest.raises(ValueError, match="diag_quad prox undefined"):
            solver.iterate(1)
        with pytest.raises(RuntimeError, match="closed"):
            solver.iterate(1)
        solver.close()

    def test_worker_error_closes_solver_process(self):
        from repro.core.parameters import apply_rho_scale

        b = GraphBuilder()
        w = b.add_variable(2)
        b.add_factor(
            DiagQuadProx(dims=(2,)),
            [w],
            params={"q": np.full(2, -0.5), "c": np.zeros(2)},
        )
        batch = replicate_graph(b.build(), 2)
        solver = RebalancingShardedSolver(batch, num_shards=2, mode="process")
        solver.iterate(2)
        for sh in solver.shards:
            apply_rho_scale(sh.state, 0.2)
        with pytest.raises(RuntimeError, match="sweep failed"):
            solver.iterate(1)
        with pytest.raises(RuntimeError, match="closed"):
            solver.iterate(1)
        solver.close()

    def test_close_is_idempotent_and_blocks_migration(self):
        solver = RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        )
        solver.close()
        solver.close()
        with pytest.raises(RuntimeError):
            solver.iterate(1)
        with pytest.raises(RuntimeError):
            solver.reshard(2)
        with pytest.raises(RuntimeError):
            solver.steal_once()
        with pytest.raises(RuntimeError):
            solver.add_instances(1)
        with pytest.raises(RuntimeError):
            solver.remove_instances([0])

    def test_single_shard_degenerates_to_batched(self):
        plain = BatchedSolver(quad_batch(TARGETS), rho=1.1)
        plain.initialize("zeros")
        plain.iterate(10)
        with RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=1, mode="thread", rho=1.1
        ) as solver:
            solver.initialize("zeros")
            solver.iterate(10)
            assert solver.steal_once() is None  # nothing to steal from
            np.testing.assert_array_equal(solver.fleet_z(), plain.state.z)
        plain.close()


class TestElasticRosters:
    def test_add_remove_preserves_survivors(self):
        elastic = RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=3, mode="thread", rho=1.3
        )
        untouched = BatchedSolver(quad_batch(TARGETS), rho=1.3)
        elastic.initialize("zeros")
        untouched.initialize("zeros")
        elastic.iterate(9)
        untouched.iterate(9)
        elastic.remove_instances([1, 4])
        elastic.iterate(11)
        untouched.iterate(11)
        elastic.add_instances(1)
        elastic.iterate(5)
        untouched.iterate(5)
        survivors = [0, 2, 3, 5, 6, 7]
        rows = elastic.split_z()
        urows = untouched.batch.split_z(untouched.state.z)
        for j, i in enumerate(survivors):
            np.testing.assert_array_equal(rows[j], urows[i])
            np.testing.assert_array_equal(
                elastic.family_rows("u")[j],
                untouched.state.u[untouched.batch.slot_index[i]],
            )
        elastic.close()
        untouched.close()

    def test_add_routes_to_lightest_shard_and_is_incremental(self):
        from repro.graph.batch import REBUILD_COUNTER

        with RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        ) as solver:
            solver.remove_instances([0, 1, 2])  # shard 0 now lighter
            sizes = [len(r) for r in solver.shard_rosters()]
            before = REBUILD_COUNTER.snapshot()
            solver.add_instances(2)
            assert (
                REBUILD_COUNTER.instances_built - before["instances_built"] == 2
            ), "solver add must use the incremental append"
            assert (
                REBUILD_COUNTER.full_replications == before["full_replications"]
            ), "solver add must not re-replicate the fleet"
            new_sizes = [len(r) for r in solver.shard_rosters()]
            lightest = int(np.argmin(sizes))
            assert new_sizes[lightest] == sizes[lightest] + 2

    def test_fresh_instances_ignore_schedule_drift(self):
        from repro.core.parameters import apply_rho_scale

        with RebalancingShardedSolver(
            quad_batch(np.ones((2, 2))), num_shards=2, mode="thread", rho=5.0
        ) as solver:
            for sh in solver.shards:
                apply_rho_scale(sh.state, 3.0)
            solver.add_instances(1)
            rows = solver.rho_rows()
            assert np.all(rows[:2] == 15.0), "existing instances keep drifted rho"
            assert np.all(rows[2] == 5.0), "newcomer gets construction-time rho"

    def test_remove_dissolving_a_shard(self):
        with RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=4, mode="thread"
        ) as solver:
            first = list(solver.shard_rosters()[0])
            solver.remove_instances(first)
            assert solver.num_shards == 3
            assert solver.batch_size == 8 - len(first)
            solver.iterate(3)  # still sweeps fine
