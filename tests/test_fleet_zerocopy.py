"""Zero-copy shared-memory transport + predictive stealing (ISSUE 10).

The tentpole claim: process-mode rebalancing workers own capacity-bound
shared-memory mirrors (roster size × ``slack``), so steals, rebinds,
reshards, and elastic resizes are index-map updates plus row copies in
shared memory — the command queue carries **zero iterate bytes**, with
:meth:`RebalancingShardedSolver.transport_stats` as the witness
(``queue_state_bytes == queue_reply_bytes == 0``).  Growth past the slack
triggers exactly one counted buffer rebuild; crashes replay from the
parent's authoritative mirror.  Everything stays bit-identical to the
queue transport and to a solo :class:`BatchedSolver` — transports and
steal policies move bytes and rosters, never math.

The ISSUE 10 satellite fixes are pinned here too: ring-drop propagation
in rebalance worker replies (with a length guard for old 4-tuple replies),
fresh-penalty defaults that pin their templates against id() reuse, and
the O(S²·B)→incremental ``_auto_steal`` rewrite (decision parity against
the legacy rescan).

The seed list is a matrix: CI gates the defaults and can widen it via
``REPRO_CHURN_SEEDS`` (comma-separated ints, replacing the defaults).
"""

import gc
import os
import weakref

import numpy as np
import pytest

import repro.core.rebalance as rebalance_mod
from repro.core.batched import BatchedSolver
from repro.core.rebalance import (
    STEAL_POLICIES,
    TRANSPORTS,
    RebalancingShardedSolver,
    StealEvent,
    _run_reply,
)
from repro.core.service import FleetService
from repro.core.supervision import WorkerPolicy
from repro.graph.batch import pack_graphs, replicate_graph
from repro.graph.builder import GraphBuilder
from repro.obs.events import EventRing, Tracer
from repro.prox.standard import DiagQuadProx
from repro.testing.faults import kill_worker

DEFAULT_SEEDS = (0, 1)

FAST = WorkerPolicy(
    heartbeat_interval=0.05,
    wait_timeout=2.0,
    poll_interval=0.05,
    max_restarts=2,
    backoff=0.01,
)


def churn_seeds():
    override = [
        int(tok)
        for tok in os.environ.get("REPRO_CHURN_SEEDS", "").split(",")
        if tok.strip()
    ]
    return override if override else list(DEFAULT_SEEDS)


def quad_template():
    b = GraphBuilder()
    w = b.add_variable(2)
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [w],
        params={"q": np.ones(2), "c": np.zeros(2)},
    )
    return b.build()


def overrides_for(targets):
    return [{0: {"c": -np.asarray(t, dtype=float)}} for t in targets]


def quad_fleet(targets):
    return replicate_graph(quad_template(), len(targets), overrides_for(targets))


def uneven_targets(B=8, easy=3, seed=3):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [np.zeros((easy, 2)), rng.normal(size=(B - easy, 2)) * 20.0]
    )


TARGETS = uneven_targets()
SOLVE = dict(max_iterations=200, check_every=5, init="zeros")


def assert_results_equal(got, ref):
    for a, b in zip(got, ref):
        assert a.iterations == b.iterations
        assert a.converged == b.converged
        np.testing.assert_array_equal(a.z, b.z)
        assert a.history.primal == b.history.primal
        assert a.history.dual == b.history.dual


# --------------------------------------------------------------------- #
# Knob validation.                                                       #
# --------------------------------------------------------------------- #
class TestValidation:
    def test_bad_knobs_rejected(self):
        batch = quad_fleet(TARGETS)
        with pytest.raises(ValueError, match="transport"):
            RebalancingShardedSolver(batch, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="steal_policy"):
            RebalancingShardedSolver(batch, steal_policy="oracle")
        with pytest.raises(ValueError, match="slack"):
            RebalancingShardedSolver(batch, slack=0.5)
        assert "shared" in TRANSPORTS and "queue" in TRANSPORTS
        assert "count" in STEAL_POLICIES and "predictive" in STEAL_POLICIES

    def test_service_validates_eagerly(self):
        with pytest.raises(ValueError, match="steal_policy"):
            FleetService(quad_template(), steal_policy="oracle")
        with pytest.raises(ValueError, match="transport"):
            FleetService(quad_template(), transport="carrier-pigeon")

    def test_summary_names_transport_and_policy(self):
        with RebalancingShardedSolver(
            quad_fleet(TARGETS), num_shards=2, mode="thread"
        ) as solver:
            assert "transport=thread" in solver.summary()
            assert "steal_policy=count" in solver.summary()


# --------------------------------------------------------------------- #
# The tentpole witness: zero iterate bytes on the command queue.         #
# --------------------------------------------------------------------- #
class TestZeroCopyTransport:
    def test_shared_solve_moves_zero_queue_bytes(self):
        solo = BatchedSolver(quad_fleet(TARGETS))
        ref = solo.solve_batch(**SOLVE)
        with RebalancingShardedSolver(
            quad_fleet(TARGETS), num_shards=3, mode="process", steal_threshold=2
        ) as solver:
            res = solver.solve_batch(**SOLVE)
            stats = solver.transport_stats()
            assert len(solver.steal_log) > 0  # churn actually happened
        assert_results_equal(res, ref)
        assert stats["transport"] == "shared"
        assert stats["queue_state_bytes"] == 0
        assert stats["queue_reply_bytes"] == 0
        assert stats["shared_push_bytes"] > 0
        assert stats["shared_pull_bytes"] > 0
        assert stats["segments"] > 0

    def test_queue_transport_is_bit_identical_and_counted(self):
        solo = BatchedSolver(quad_fleet(TARGETS))
        ref = solo.solve_batch(**SOLVE)
        with RebalancingShardedSolver(
            quad_fleet(TARGETS),
            num_shards=3,
            mode="process",
            transport="queue",
            steal_threshold=2,
        ) as solver:
            res = solver.solve_batch(**SOLVE)
            stats = solver.transport_stats()
        assert_results_equal(res, ref)
        assert stats["transport"] == "queue"
        assert stats["queue_state_bytes"] > 0
        assert stats["queue_reply_bytes"] > 0
        assert stats["shared_push_bytes"] == 0
        assert stats["shared_pull_bytes"] == 0

    def test_churn_keeps_queue_dry(self):
        """Steal + reshard + elastic add/remove: still zero queue bytes."""
        with RebalancingShardedSolver(
            quad_fleet(TARGETS), num_shards=2, mode="process", slack=2.0
        ) as solver:
            solver.iterate(3)
            solver.steal_once()
            solver.iterate(3)
            solver.reshard(3)
            solver.iterate(3)
            solver.add_instances(overrides_for([[5.0, -5.0]]))
            solver.iterate(3)
            solver.remove_instances([0])
            solver.iterate(3)
            stats = solver.transport_stats()
        assert stats["queue_state_bytes"] == 0
        assert stats["queue_reply_bytes"] == 0


# --------------------------------------------------------------------- #
# Roster slack: rebuilds only past capacity, recovery from the mirror.   #
# --------------------------------------------------------------------- #
class TestSlackAndRecovery:
    def test_churn_within_slack_never_rebuilds(self):
        with RebalancingShardedSolver(
            quad_fleet(TARGETS), num_shards=2, mode="process", slack=2.0
        ) as solver:
            solver.iterate(2)
            solver.steal_once()  # 4+4 -> at most 6+2: inside 2x slack
            solver.iterate(2)
            solver.reshard(2)
            solver.iterate(2)
            assert solver.transport_stats()["buffer_rebuilds"] == 0

    def test_growth_past_slack_rebuilds_once(self):
        twin = RebalancingShardedSolver(
            quad_fleet(uneven_targets(4, 1)), num_shards=2, mode="thread"
        )
        with RebalancingShardedSolver(
            quad_fleet(uneven_targets(4, 1)),
            num_shards=2,
            mode="process",
            slack=1.25,
        ) as solver:
            for s in (solver, twin):
                s.iterate(3)
                # 2+2 rosters at slack 1.25: +3 instances overflows the
                # receiving worker's capacity -> one rebuild, same math.
                s.add_instances(overrides_for([[4.0, 4.0]] * 3))
                s.iterate(3)
            stats = solver.transport_stats()
            np.testing.assert_array_equal(solver.fleet_z(), twin.fleet_z())
            twin.close()
        assert stats["buffer_rebuilds"] >= 1
        assert stats["queue_state_bytes"] == 0

    def test_crash_replays_from_parent_mirror(self):
        """SIGKILL mid-churn: restart-replay re-pushes the authoritative
        parent mirror into the (re-inherited) shared buffers — results
        stay bit-identical and the queue stays dry."""
        solo = BatchedSolver(quad_fleet(TARGETS))
        ref = solo.solve_batch(**SOLVE)
        with RebalancingShardedSolver(
            quad_fleet(TARGETS),
            num_shards=2,
            mode="process",
            steal_threshold=2,
            policy=FAST,
        ) as solver:
            kill_worker(solver, 0)
            res = solver.solve_batch(**SOLVE)
            stats = solver.transport_stats()
            assert len(solver.fault_log.crashes) >= 1
        for a, b in zip(res, ref):
            np.testing.assert_array_equal(a.z, b.z)
        assert stats["queue_state_bytes"] == 0
        assert stats["queue_reply_bytes"] == 0


# --------------------------------------------------------------------- #
# Predictive, cost-weighted stealing.                                    #
# --------------------------------------------------------------------- #
class TestPredictivePolicy:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_predictive_is_bit_identical_to_count(self, mode):
        runs = {}
        for policy in STEAL_POLICIES:
            with RebalancingShardedSolver(
                quad_fleet(TARGETS),
                num_shards=3,
                mode=mode,
                steal_threshold=2,
                steal_policy=policy,
            ) as solver:
                runs[policy] = solver.solve_batch(**SOLVE)
        assert_results_equal(runs["predictive"], runs["count"])

    def test_predictive_steal_decisions_deterministic(self):
        for seed in churn_seeds():
            logs = []
            for _ in range(2):
                with RebalancingShardedSolver(
                    quad_fleet(uneven_targets(seed=seed + 11)),
                    num_shards=3,
                    mode="thread",
                    steal_threshold=2,
                    steal_policy="predictive",
                    steal_seed=seed,
                ) as solver:
                    solver.solve_batch(**SOLVE)
                    logs.append(list(solver.steal_log))
            assert logs[0] == logs[1], f"seed {seed}: steal log not reproducible"

    def test_predictive_steals_carry_moved_load(self):
        with RebalancingShardedSolver(
            quad_fleet(TARGETS),
            num_shards=3,
            mode="thread",
            steal_threshold=2,
            steal_policy="predictive",
        ) as solver:
            solver.solve_batch(**SOLVE)
            assert solver.steal_log, "predictive run produced no steals"
            for ev in solver.steal_log:
                assert ev.moved_load is not None and ev.moved_load > 0.0

    def test_shard_loads_reports_per_shard_seconds(self):
        with RebalancingShardedSolver(
            quad_fleet(TARGETS), num_shards=3, mode="thread"
        ) as solver:
            solver.iterate(5)
            loads = solver.shard_loads()
            assert len(loads) == solver.num_shards
            assert all(ld >= 0.0 for ld in loads)
            # A frozen instance weighs zero: masking everything off zeroes
            # every load.
            none_active = np.zeros(solver.batch_size, dtype=bool)
            assert solver.shard_loads(none_active) == [0.0] * solver.num_shards


# --------------------------------------------------------------------- #
# Satellite 1: ring-drop propagation in rebalance worker replies.        #
# --------------------------------------------------------------------- #
class TestDroppedEvents:
    def test_run_reply_guards_legacy_four_tuples(self):
        fams, elapsed, kernels, events, dropped = _run_reply((1, 2.0, {}, ()))
        assert (fams, elapsed, kernels, events, dropped) == (1, 2.0, {}, (), 0)
        assert _run_reply((1, 2.0, {}, (), 7))[4] == 7

    def test_worker_ring_overflow_reaches_parent_tracer(self, monkeypatch):
        """A tiny worker ring must surface as a parent-side "drop" point —
        the accounting the rebalance reply path used to swallow."""
        monkeypatch.setattr(
            rebalance_mod, "EventRing", lambda capacity=0: EventRing(2)
        )
        tracer = Tracer()
        with RebalancingShardedSolver(
            quad_fleet(TARGETS), num_shards=2, mode="process", tracer=tracer
        ) as solver:
            solver.solve_batch(max_iterations=20, check_every=5, init="zeros")
        drops = [e for e in tracer.events() if e.kind == "drop"]
        assert drops, "worker ring overflow was not reported to the tracer"
        assert any("dropped" in e.name for e in drops)


# --------------------------------------------------------------------- #
# Satellite 2: fresh-penalty defaults pin their templates.               #
# --------------------------------------------------------------------- #
class TestTemplateDefaultLifetime:
    def _mixed_solver(self):
        def tmpl(c):
            b = GraphBuilder()
            w = b.add_variable(2)
            b.add_factor(
                DiagQuadProx(dims=(2,)),
                [w],
                params={"q": np.ones(2), "c": np.full(2, c)},
            )
            return b.build()

        t1, t2 = tmpl(1.0), tmpl(-2.0)
        batch = pack_graphs([t1, t2], [2, 2])
        solver = RebalancingShardedSolver(
            batch, num_shards=2, mode="thread", rho=3.0
        )
        return solver, t1, t2

    def test_mixed_defaults_pin_templates_against_gc(self):
        solver, t1, t2 = self._mixed_solver()
        with solver:
            ref = weakref.ref(t2)
            del t1, t2
            gc.collect()
            # The defaults table holds the strong ref: the id() keys can
            # never be recycled while the solver lives.
            assert ref() is not None
            # Churn the allocator: a freed template's id must not be able
            # to alias a new object into the wrong default row.
            junk = [object() for _ in range(1000)]
            del junk
            t2_alive = ref()
            solver.add_instances(1, templates=[t2_alive])
            g = solver.batch_size - 1
            np.testing.assert_array_equal(
                solver.rho_rows()[g], np.full(t2_alive.num_edges, 3.0)
            )

    def test_unseen_template_falls_back_to_scalar_not_stale_row(self):
        solver, t1, t2 = self._mixed_solver()
        with solver:
            b = GraphBuilder()
            w = b.add_variable(2)
            b.add_factor(
                DiagQuadProx(dims=(2,)),
                [w],
                params={"q": np.ones(2), "c": np.zeros(2)},
            )
            t_new = b.build()
            # Identity check: an entry is only used when its pinned
            # template *is* the newcomer's — never on a bare id() match.
            ent = solver._fresh_by_template.get(id(t_new))
            assert ent is None or ent[0] is not t_new
            solver.add_instances(1, templates=[t_new])
            g = solver.batch_size - 1
            np.testing.assert_array_equal(
                solver.rho_rows()[g], np.full(t_new.num_edges, 3.0)
            )


# --------------------------------------------------------------------- #
# Satellite 3: incremental _auto_steal decision parity.                  #
# --------------------------------------------------------------------- #
class LegacyRescanSolver(RebalancingShardedSolver):
    """The pre-ISSUE-10 O(S²·B) pass: full roster rescan per thief."""

    def _auto_steal(self, active):
        if self.steal_threshold <= 0 or self.num_shards < 2:
            return []
        events = []
        order = self._steal_rng.permutation(self.num_shards)
        for thief_idx in order:
            counts = [int(active[sh.ids].sum()) for sh in self.shards]
            if counts[thief_idx] >= self.steal_threshold:
                continue
            hi = max(c for i, c in enumerate(counts) if i != thief_idx)
            if hi <= counts[thief_idx]:
                continue
            donor_idx = self._pick(
                [i for i, c in enumerate(counts) if c == hi and i != thief_idx]
            )
            ev = self._steal(int(thief_idx), donor_idx, active)
            if ev is not None:
                events.append(ev)
        return events


class TestIncrementalAutoSteal:
    def test_decision_parity_with_legacy_rescan(self):
        for seed in churn_seeds():
            rng = np.random.default_rng(seed)
            masks = [rng.random(16) < 0.4 for _ in range(6)]
            logs = []
            for cls in (RebalancingShardedSolver, LegacyRescanSolver):
                with cls(
                    quad_fleet(uneven_targets(16, 4, seed=seed)),
                    num_shards=4,
                    mode="thread",
                    steal_threshold=2,
                    steal_seed=seed,
                ) as solver:
                    for mask in masks:
                        solver.steal_pass(mask)
                    logs.append(
                        (list(solver.steal_log), solver.shard_rosters())
                    )
            assert logs[0] == logs[1], f"seed {seed}: decisions diverged"

    def test_solve_parity_with_legacy_rescan(self):
        logs = []
        for cls in (RebalancingShardedSolver, LegacyRescanSolver):
            with cls(
                quad_fleet(TARGETS), num_shards=3, mode="thread",
                steal_threshold=2, steal_seed=5,
            ) as solver:
                res = solver.solve_batch(**SOLVE)
                logs.append((list(solver.steal_log), [r.z.tobytes() for r in res]))
        assert logs[0] == logs[1]


# --------------------------------------------------------------------- #
# Churn matrix: both policies, both transports, bit-for-bit.             #
# --------------------------------------------------------------------- #
class TestChurnMatrix:
    @pytest.mark.parametrize("policy", STEAL_POLICIES)
    def test_scripted_churn_bitwise_across_transports(self, policy):
        for seed in churn_seeds():
            targets = uneven_targets(8, 2, seed=seed + 29)
            z_runs = []
            stats_runs = []
            for transport in TRANSPORTS:
                with RebalancingShardedSolver(
                    quad_fleet(targets),
                    num_shards=2,
                    mode="process",
                    transport=transport,
                    steal_threshold=2,
                    steal_policy=policy,
                    steal_seed=seed,
                    slack=2.0,
                ) as solver:
                    solver.iterate(4)
                    solver.steal_once()
                    solver.iterate(4)
                    solver.add_instances(overrides_for([[3.0, -1.0]]))
                    solver.reshard(3)
                    solver.iterate(4)
                    z_runs.append(solver.fleet_z())
                    stats_runs.append(solver.transport_stats())
            np.testing.assert_array_equal(z_runs[0], z_runs[1])
            assert stats_runs[0]["queue_state_bytes"] == 0
            assert stats_runs[1]["queue_state_bytes"] > 0
