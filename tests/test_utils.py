"""Unit tests for utils: rng, timing, validation."""

import time

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, default_rng, shuffled, spawn_rngs
from repro.utils.timing import KernelTimers, Timer, format_seconds
from repro.utils.validation import (
    check_array,
    check_finite,
    check_positive,
    check_shape,
)


class TestRng:
    def test_default_seed_is_deterministic(self):
        a = default_rng().random(5)
        b = default_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_explicit_seed(self):
        a = default_rng(7).random(3)
        b = default_rng(7).random(3)
        c = default_rng(8).random(3)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(3)
        vals = [r.random() for r in rngs]
        assert len(set(vals)) == 3

    def test_spawn_rngs_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(-1)

    def test_shuffled_is_permutation(self):
        out = shuffled(range(10))
        assert sorted(out) == list(range(10))

    def test_shuffled_deterministic(self):
        assert shuffled(range(10), seed=1) == shuffled(range(10), seed=1)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        with t:
            time.sleep(0.01)
        assert t.calls == 2
        assert t.elapsed >= 0.015

    def test_mean(self):
        t = Timer()
        assert t.mean == 0.0
        with t:
            pass
        assert t.mean >= 0.0

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.calls == 0 and t.elapsed == 0.0


class TestKernelTimers:
    def test_fractions_sum_to_one(self):
        kt = KernelTimers()
        for k in ("x", "m", "z", "u", "n"):
            kt[k].elapsed = 1.0
        fr = kt.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-12

    def test_fractions_zero_when_untimed(self):
        kt = KernelTimers()
        assert all(v == 0.0 for v in kt.fractions().values())

    def test_summary_format(self):
        kt = KernelTimers()
        kt["x"].elapsed = 0.5
        assert "x:" in kt.summary()

    def test_unknown_kind_raises(self):
        kt = KernelTimers()
        with pytest.raises(KeyError):
            kt["w"]


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expect",
        [(2.5, "2.500s"), (0.0031, "3.100ms"), (2e-6, "2.0us")],
    )
    def test_ranges(self, value, expect):
        assert format_seconds(value) == expect

    def test_nan(self):
        assert format_seconds(float("nan")) == "nan"


class TestValidation:
    def test_check_array_ndim(self):
        with pytest.raises(ValueError, match="ndim"):
            check_array([[1.0]], "x", ndim=1)

    def test_check_array_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_array([], "x", allow_empty=False)

    def test_check_finite(self):
        with pytest.raises(ValueError, match="finite"):
            check_finite(np.array([1.0, np.nan]), "x")
        check_finite(np.array([1.0]), "x")

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "p")

    def test_check_positive_accepts(self):
        assert check_positive(2, "p") == 2.0

    def test_check_shape_wildcards(self):
        a = np.zeros((3, 2))
        check_shape(a, (-1, 2), "a")
        with pytest.raises(ValueError, match="shape"):
            check_shape(a, (3, 3), "a")
