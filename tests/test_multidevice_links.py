"""Tests for the interconnect presets (PCIe vs Ethernet — "multiple computers")."""

import pytest

from repro.gpusim.device import OPTERON_6300, TESLA_K40
from repro.gpusim.multidevice import ETHERNET_10G, PCIE_GEN3, simulate_multi_gpu
from repro.gpusim.synthetic import packing_workloads


class TestLinkPresets:
    def test_ethernet_slower_than_pcie(self):
        bytes_ = 1e6
        assert ETHERNET_10G.transfer_s(bytes_) > PCIE_GEN3.transfer_s(bytes_)

    def test_multi_computer_needs_low_cut_fraction(self):
        """Over Ethernet the cut fraction decides, not the problem size.

        Boundary traffic scales with the edge count exactly like compute
        does, so at a 10% cut a second machine never pays off; at a 0.1%
        cut (a genuinely separable decomposition) it does.  This is the
        quantified version of the paper's caution that the multi-computer
        extension "requires new code" — it also requires a good partition.
        """
        wl, _ = packing_workloads(3000)
        r1 = simulate_multi_gpu(TESLA_K40, OPTERON_6300, wl, 1)
        bad_cut = simulate_multi_gpu(
            TESLA_K40, OPTERON_6300, wl, 2, cut_fraction=0.1, link=ETHERNET_10G
        )
        good_cut = simulate_multi_gpu(
            TESLA_K40, OPTERON_6300, wl, 2, cut_fraction=0.001, link=ETHERNET_10G
        )
        assert bad_cut.iteration_s > r1.iteration_s
        assert good_cut.iteration_s < r1.iteration_s

    def test_pcie_vs_ethernet_same_compute(self):
        wl, _ = packing_workloads(1000)
        pcie = simulate_multi_gpu(
            TESLA_K40, OPTERON_6300, wl, 4, cut_fraction=0.1, link=PCIE_GEN3
        )
        eth = simulate_multi_gpu(
            TESLA_K40, OPTERON_6300, wl, 4, cut_fraction=0.1, link=ETHERNET_10G
        )
        assert pcie.compute_s == pytest.approx(eth.compute_s)
        assert eth.comm_s > pcie.comm_s
