"""Tests for the observability subsystem (ISSUE 8: ``repro.obs``).

Covers the three layers — typed events on the unified fleet clock, the
metrics registry with Prometheus exposition, and the exporters — plus the
end-to-end claims: a traced ``RebalancingShardedSolver`` run under faults
and churn yields one causally ordered timeline carrying segment spans,
per-worker kernel timings, steal and fault and request events; the Chrome
export validates against the trace-event format; and tracing never
changes results (traced solves are bit-identical to untraced ones).
"""

import json

import numpy as np
import pytest

from repro.core.batched import BatchedSolver
from repro.core.rebalance import RebalancingShardedSolver
from repro.core.service import FleetService
from repro.core.sharded import ShardedBatchedSolver
from repro.core.supervision import WorkerPolicy
from repro.graph.batch import replicate_graph
from repro.graph.builder import GraphBuilder
from repro.obs.events import (
    PARENT,
    EventRing,
    TraceEvent,
    Tracer,
    default_tracer,
    segment_events,
    trace_enabled,
)
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    timeline_report,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, fleet_metrics
from repro.prox.standard import DiagQuadProx
from repro.testing.faults import FaultInjector
from repro.utils.timing import UPDATE_KINDS

#: Fast supervision for the fault-injection integration test.
FAST = WorkerPolicy(
    heartbeat_interval=0.05,
    wait_timeout=2.0,
    poll_interval=0.05,
    max_restarts=1,
    backoff=0.01,
)


def quad_template():
    b = GraphBuilder()
    w = b.add_variable(2)
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [w],
        params={"q": np.ones(2), "c": np.zeros(2)},
    )
    return b.build()


def quad_batch(targets):
    overrides = [{0: {"c": -np.asarray(t, dtype=float)}} for t in targets]
    return replicate_graph(quad_template(), len(targets), overrides)


def uneven_targets(B=8, easy=3):
    rng = np.random.default_rng(3)
    return np.concatenate(
        [np.zeros((easy, 2)), rng.normal(size=(B - easy, 2)) * 20.0]
    )


SOLVE = dict(max_iterations=200, check_every=5, init="zeros")


# --------------------------------------------------------------------- #
# Events, rings, tracers.                                               #
# --------------------------------------------------------------------- #


class TestTraceEvent:
    def test_span_and_point_properties(self):
        span = TraceEvent("segment", "s", 1.0, 3.0, segment=2, worker=0)
        assert span.is_span and span.duration == 2.0
        pt = TraceEvent("steal", "p", 5.0, 5.0)
        assert not pt.is_span and pt.duration == 0.0
        assert pt.worker == PARENT

    def test_shifted(self):
        ev = TraceEvent("kernel", "x", 1.0, 2.0)
        moved = ev.shifted(10.0)
        assert (moved.t0, moved.t1) == (11.0, 12.0)
        assert moved.kind == "kernel" and ev.t0 == 1.0

    def test_picklable(self):
        import pickle

        ev = TraceEvent("steal", "s", 1.0, 1.0, data={"instances": [1, 2]})
        assert pickle.loads(pickle.dumps(ev)) == ev


class TestEventRing:
    def test_bounded_with_drop_count(self):
        ring = EventRing(capacity=3)
        for i in range(5):
            ring.append(TraceEvent("steal", str(i), float(i), float(i)))
        assert len(ring) == 3
        assert ring.dropped == 2
        names = [ev.name for ev in ring.drain()]
        assert names == ["2", "3", "4"]  # oldest were dropped
        assert len(ring) == 0
        assert ring.dropped == 2  # drain keeps the count

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)


class TestTracer:
    def test_emit_rejects_unknown_kind(self):
        tr = Tracer()
        with pytest.raises(ValueError, match="unknown event kind"):
            tr.emit(TraceEvent("bogus", "x", 0.0, 0.0))
        with pytest.raises(ValueError):
            tr.point("nonsense")

    def test_point_span_and_context_manager(self):
        tr = Tracer()
        tr.point("steal", "s", worker=1, segment=3, donor=0)
        tr.add_span("segment", "seg", 1.0, 2.0, worker=0, sweeps=5)
        with tr.span("solve", "solve") as data:
            data["note"] = "ok"
        assert len(tr) == 3
        kinds = [ev.kind for ev in tr.events()]
        assert kinds == ["steal", "segment", "solve"]
        assert tr.events()[0].data == {"donor": 0}
        assert tr.events()[2].data == {"note": "ok"}
        solve = tr.events()[2]
        assert solve.t1 >= solve.t0

    def test_timeline_causal_order(self):
        tr = Tracer()
        # Emitted out of order: timeline sorts by (t0, segment, worker, t1).
        tr.add_span("segment", "late", 5.0, 6.0, worker=1, segment=2)
        tr.point("steal", "early", t=1.0, segment=0)
        tr.add_span("segment", "tie-w0", 5.0, 6.0, worker=0, segment=2)
        tl = tr.timeline()
        assert [ev.name for ev in tl] == ["early", "tie-w0", "late"]

    def test_extend_and_clear(self):
        tr = Tracer()
        tr.extend(
            segment_events(
                worker=2,
                segment=4,
                t0=1.0,
                t1=2.0,
                sweeps=5,
                kernel_seconds={"x": 0.5, "z": 0.25},
            )
        )
        assert len(tr) == 3  # segment + two kernel spans
        tr.clear()
        assert len(tr) == 0 and tr.dropped == 0


class TestSegmentEvents:
    def test_segment_plus_kernels_back_to_back(self):
        evs = segment_events(
            worker=1,
            segment=7,
            t0=10.0,
            t1=11.0,
            sweeps=5,
            kernel_seconds={k: 0.1 for k in UPDATE_KINDS},
        )
        seg, kernels = evs[0], evs[1:]
        assert seg.kind == "segment" and seg.data["sweeps"] == 5
        assert [ev.name for ev in kernels] == list(UPDATE_KINDS)
        t = 10.0
        for ev in kernels:
            assert ev.kind == "kernel" and ev.worker == 1 and ev.segment == 7
            assert ev.t0 == pytest.approx(t)
            assert ev.duration == pytest.approx(0.1)
            t += 0.1

    def test_zero_kernels_skipped_and_name_override(self):
        evs = segment_events(
            worker=0,
            segment=0,
            t0=0.0,
            t1=1.0,
            sweeps=1,
            kernel_seconds={"x": 0.2, "m": 0.0},
            name="failover shard 3",
        )
        assert evs[0].name == "failover shard 3"
        assert [ev.name for ev in evs[1:]] == ["x"]

    def test_no_kernel_seconds(self):
        evs = segment_events(worker=0, segment=0, t0=0.0, t1=1.0, sweeps=2)
        assert len(evs) == 1 and evs[0].kind == "segment"


class TestDefaultTracer:
    def test_env_gating(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not trace_enabled()
        assert default_tracer() is None
        for off in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("REPRO_TRACE", off)
            assert not trace_enabled()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert trace_enabled()
        tr = default_tracer()
        assert isinstance(tr, Tracer)
        assert default_tracer() is tr  # process-wide singleton


# --------------------------------------------------------------------- #
# Metrics registry + Prometheus text.                                   #
# --------------------------------------------------------------------- #


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = reg.gauge("g")
        g.set(5)
        g.dec(2)
        assert g.value == 3.0
        assert reg.counter("c_total") is c  # get-or-create

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("m")

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        samples = dict(
            ((name, labels), value) for name, labels, value in h.samples()
        )
        assert samples[("lat_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_bucket", (("le", "1"),))] == 3
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 4
        assert samples[("lat_count", ())] == 4
        assert samples[("lat_sum", ())] == pytest.approx(6.05)

    def test_render_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_steals_total", "Steals").inc(2)
        reg.gauge("repro_busy_seconds", worker="0").set(1.5)
        reg.histogram("repro_lat", buckets=(1.0,)).observe(0.5)
        text = reg.render()
        assert "# HELP repro_steals_total Steals" in text
        assert "# TYPE repro_steals_total counter" in text
        assert "repro_steals_total 2" in text
        assert 'repro_busy_seconds{worker="0"} 1.5' in text
        assert "# TYPE repro_lat histogram" in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text
        assert text.endswith("\n")

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestFleetMetrics:
    def make_timeline(self):
        evs = segment_events(
            worker=0,
            segment=0,
            t0=0.0,
            t1=1.0,
            sweeps=5,
            kernel_seconds={"x": 0.25, "z": 0.5},
        )
        evs += segment_events(worker=1, segment=0, t0=0.0, t1=0.5, sweeps=5)
        evs.append(TraceEvent("steal", "s", 1.0, 1.0))
        evs.append(TraceEvent("migration", "m", 1.0, 1.0))
        evs.append(TraceEvent("crash", "c", 1.0, 1.0))
        evs.append(TraceEvent("restart", "r", 1.1, 1.1))
        evs.append(TraceEvent("submit", "q", 1.2, 1.2))
        evs.append(TraceEvent("admit", "q", 1.3, 1.3))
        evs.append(
            TraceEvent("evict", "q", 2.0, 2.0, data={"latency": 0.8})
        )
        return evs

    def test_aggregation(self):
        reg = fleet_metrics(self.make_timeline())
        text = reg.render()
        assert "repro_segments_total 2" in text
        assert "repro_sweeps_total 10" in text
        assert 'repro_kernel_seconds_total{kernel="x"} 0.25' in text
        assert 'repro_kernel_seconds_total{kernel="z"} 0.5' in text
        assert "repro_steals_total 2" in text  # steal + migration
        assert 'repro_faults_total{kind="crash"} 1' in text
        assert 'repro_faults_total{kind="restart"} 1' in text
        assert 'repro_requests_total{phase="evict"} 1' in text
        assert "repro_request_latency_seconds_count 1" in text
        assert 'repro_worker_busy_seconds{worker="0"} 1' in text
        assert 'repro_worker_busy_seconds{worker="1"} 0.5' in text

    def test_prometheus_text_accepts_events_or_registry(self):
        evs = self.make_timeline()
        from_events = prometheus_text(evs)
        from_registry = prometheus_text(fleet_metrics(evs))
        assert from_events == from_registry


# --------------------------------------------------------------------- #
# Exporters.                                                            #
# --------------------------------------------------------------------- #


class TestChromeExport:
    def make_events(self):
        evs = segment_events(
            worker=0,
            segment=0,
            t0=100.0,
            t1=101.0,
            sweeps=4,
            kernel_seconds={"x": 0.5},
        )
        evs.append(
            TraceEvent(
                "segment", "parent", 100.0, 101.5, 0, PARENT, {"sweeps": 4}
            )
        )
        evs.append(TraceEvent("steal", "s", 100.5, 100.5, 0, PARENT))
        return evs

    def test_structure_and_validation(self):
        obj = chrome_trace(self.make_events())
        assert validate_chrome_trace(obj) == []
        assert obj["displayTimeUnit"] == "ms"
        rows = obj["traceEvents"]
        spans = [e for e in rows if e["ph"] == "X"]
        instants = [e for e in rows if e["ph"] == "i"]
        meta = [e for e in rows if e["ph"] == "M"]
        assert len(spans) == 3 and len(instants) == 1
        # tid mapping: parent -> 0, worker k -> k + 1; named via metadata.
        names = {e["tid"]: e["args"]["name"] for e in meta}
        assert names[0] == "parent" and names[1] == "worker 0"
        # Timestamps rebased to zero, microseconds.
        assert min(e["ts"] for e in spans) == 0.0
        kernel = next(e for e in spans if e["cat"] == "kernel")
        assert kernel["dur"] == pytest.approx(0.5e6)

    def test_validator_catches_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad_events = {
            "traceEvents": [
                "not a dict",
                {"ph": "Q", "name": "x", "pid": 0, "tid": 0, "ts": 0},
                {"ph": "X", "name": "", "pid": 0, "tid": 0, "ts": 0, "dur": 1},
                {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0},
                {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0, "dur": -1},
                {"ph": "i", "name": "x", "pid": 0, "tid": 0, "ts": 0, "s": "z"},
                {"ph": "i", "name": "x", "pid": "0", "tid": 0, "ts": 0},
            ]
        }
        problems = validate_chrome_trace(bad_events)
        assert len(problems) == 7

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        obj = write_chrome_trace(self.make_events(), path)
        loaded = json.loads(path.read_text())
        assert loaded == obj
        assert validate_chrome_trace(loaded) == []


class TestTimelineReport:
    def test_report_contents(self):
        evs = segment_events(
            worker=0,
            segment=0,
            t0=0.0,
            t1=1.0,
            sweeps=5,
            kernel_seconds={k: 0.1 for k in UPDATE_KINDS},
        )
        evs.append(TraceEvent("steal", "shard 1 -> 0", 0.5, 0.5))
        text = timeline_report(evs)
        assert "events by kind" in text
        assert "kernel time:" in text
        assert "segment busy:" in text
        assert "steal" in text

    def test_empty_and_limit(self):
        assert "no events" in timeline_report([])
        evs = [
            TraceEvent("steal", str(i), float(i), float(i)) for i in range(10)
        ]
        text = timeline_report(evs, limit=3)
        assert "(7 more events)" in text


# --------------------------------------------------------------------- #
# Solver integration: traced solves are bit-identical and complete.     #
# --------------------------------------------------------------------- #


class TestSolverIntegration:
    def test_batched_solver_traced_bit_identical(self):
        targets = uneven_targets()
        with BatchedSolver(quad_batch(targets)) as plain:
            ref = plain.solve_batch(**SOLVE)
        tracer = Tracer()
        with BatchedSolver(quad_batch(targets), tracer=tracer) as traced:
            got = traced.solve_batch(**SOLVE)
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a.z, b.z)
        kinds = {ev.kind for ev in tracer.events()}
        assert {"solve", "segment", "kernel", "freeze"} <= kinds

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_sharded_solver_traced_with_kernel_attribution(self, mode):
        targets = uneven_targets()
        with ShardedBatchedSolver(quad_batch(targets), num_shards=2) as plain:
            ref = plain.solve_batch(**SOLVE)
        tracer = Tracer()
        with ShardedBatchedSolver(
            quad_batch(targets), num_shards=2, mode=mode, tracer=tracer
        ) as traced:
            got = traced.solve_batch(**SOLVE)
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a.z, b.z)
        # Satellite 1: per-worker kernel attribution — every kernel gets
        # real time (not everything lumped into "x"), so the paper's
        # time-fraction table is reproducible in fleet mode.
        timers = got[0].timers
        fr = timers.fractions()
        assert all(timers[k].elapsed > 0.0 for k in UPDATE_KINDS)
        assert all(timers[k].calls > 0 for k in UPDATE_KINDS)
        assert 0.0 < fr["x"] < 1.0 and 0.0 < fr["z"] < 1.0
        assert sum(fr.values()) == pytest.approx(1.0)
        # Worker lanes show up with their own kernel spans.
        workers = {
            ev.worker for ev in tracer.events() if ev.kind == "kernel"
        }
        assert workers == {0, 1}

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_rebalancing_solver_traced_bit_identical(self, mode):
        targets = uneven_targets()
        with BatchedSolver(quad_batch(targets)) as plain:
            ref = plain.solve_batch(**SOLVE)
        tracer = Tracer()
        with RebalancingShardedSolver(
            quad_batch(targets),
            num_shards=3,
            mode=mode,
            steal_threshold=2,
            tracer=tracer,
        ) as solver:
            got = solver.solve_batch(**SOLVE)
            assert solver.steal_log  # the skew makes stealing happen
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a.z, b.z)
        kinds = {ev.kind for ev in tracer.events()}
        assert {"solve", "segment", "kernel", "freeze", "steal"} <= kinds
        # Per-worker kernel attribution holds here too.
        timers = got[0].timers
        assert all(timers[k].elapsed > 0.0 for k in UPDATE_KINDS)

    def test_traced_fleet_under_faults_and_churn(self):
        """The acceptance scenario: one merged, causally ordered timeline.

        Two traced process-mode rebalancing solves under kill fault plans
        share one tracer: the first has restart budget (crash leads to
        restart-and-replay), the second has none (crash leads to parent
        failover and roster migration).  The merged timeline carries
        segment spans, per-worker kernel timings, steal, and fault
        (crash/restart/failover/migration) events in causal order — and
        both results still equal the crash-free plain solve exactly.
        """
        targets = uneven_targets()
        with BatchedSolver(quad_batch(targets)) as plain:
            ref = plain.solve_batch(**SOLVE)
        tracer = Tracer()
        with RebalancingShardedSolver(
            quad_batch(targets),
            num_shards=3,
            mode="process",
            steal_threshold=2,
            policy=FAST,
            injector=FaultInjector("kill:1@1"),
            tracer=tracer,
        ) as solver:
            got = solver.solve_batch(**SOLVE)
            log = solver.fault_log
            assert log.crashes and log.restarts
            assert solver.steal_log
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a.z, b.z)

        doom = WorkerPolicy(
            heartbeat_interval=0.05,
            wait_timeout=2.0,
            poll_interval=0.05,
            max_restarts=0,
        )
        with RebalancingShardedSolver(
            quad_batch(targets),
            num_shards=3,
            mode="process",
            steal_threshold=2,
            policy=doom,
            injector=FaultInjector("kill:1@1"),
            tracer=tracer,
        ) as solver2:
            got2 = solver2.solve_batch(**SOLVE)
            log2 = solver2.fault_log
            assert log2.crashes and log2.failovers and log2.migrations
            assert solver2.num_shards == 2  # dead shard dissolved
        for a, b in zip(got2, ref):
            np.testing.assert_array_equal(a.z, b.z)

        tl = tracer.timeline()
        kinds = {ev.kind for ev in tl}
        assert {
            "solve",
            "segment",
            "kernel",
            "steal",
            "crash",
            "restart",
            "failover",
            "migration",
        } <= kinds
        # Causal order: non-decreasing start times across the merge.
        starts = [ev.t0 for ev in tl]
        assert starts == sorted(starts)
        # Fault events mirror the fault logs one-for-one.
        assert len([e for e in tl if e.kind == "crash"]) == len(
            log.crashes
        ) + len(log2.crashes)
        assert len([e for e in tl if e.kind == "migration"]) == len(
            log2.migrations
        )
        # Kernel time is attributed per worker, parent included (failover
        # segments run in the parent and land on its lane).
        lanes = {e.worker for e in tl if e.kind == "segment"}
        assert PARENT in lanes and lanes - {PARENT}
        # The whole timeline exports to a valid Chrome trace and yields
        # nonzero fleet metrics.
        assert validate_chrome_trace(chrome_trace(tl)) == []
        text = fleet_metrics(tl).render()
        assert 'repro_faults_total{kind="crash"}' in text
        assert "repro_steals_total" in text

    def test_service_traced_request_lifecycle(self):
        tracer = Tracer()
        rng = np.random.default_rng(7)
        with FleetService(
            quad_template(),
            num_shards=2,
            check_every=5,
            max_iterations=100,
            tracer=tracer,
        ) as service:
            for _ in range(4):
                service.submit(
                    params={0: {"c": -rng.normal(size=2)}},
                )
            done = service.drain()
        assert len(done) == 4
        evs = tracer.events()
        by_kind = {}
        for ev in evs:
            by_kind.setdefault(ev.kind, []).append(ev)
        assert len(by_kind["submit"]) == 4
        assert len(by_kind["admit"]) == 4
        assert len(by_kind["evict"]) == 4
        for ev in by_kind["evict"]:
            assert ev.data["latency"] > 0.0
            assert ev.data["sweeps"] > 0
        # The latency histogram is fed from the evict events.
        reg = fleet_metrics(tracer.timeline())
        assert "repro_request_latency_seconds_count 4" in reg.render()
        # Solver events share the same tracer: the service timeline also
        # carries the fleet's segment/kernel spans.
        assert "segment" in by_kind and "kernel" in by_kind

    def test_env_switch_enables_tracing_in_solver(self, monkeypatch):
        import repro.obs.events as events_mod

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setattr(events_mod, "_global_tracer", None)
        targets = uneven_targets(B=4, easy=1)
        with BatchedSolver(quad_batch(targets)) as solver:
            assert solver.tracer is events_mod.default_tracer()
            solver.solve_batch(max_iterations=20, check_every=5, init="zeros")
        assert len(solver.tracer) > 0
        monkeypatch.setattr(events_mod, "_global_tracer", None)
