"""Unit tests for the MPC, SVM, and Lasso proximal operators."""

import numpy as np
import pytest

from repro.prox.lasso import DataFidelityProx
from repro.prox.mpc import MPCCostProx, make_dynamics_prox, make_initial_state_prox
from repro.prox.svm import SVMMarginProx, SVMNormProx, SVMSlackProx

RNG = np.random.default_rng(11)


class TestMPCCost:
    def test_closed_form(self):
        op = MPCCostProx(dq=2, du=1)
        n = np.array([[1.0, 2.0, 3.0]])
        out = op.prox_batch(
            n,
            np.array([[2.0]]),
            {"qdiag": np.array([[1.0, 1.0]]), "rdiag": np.array([[0.5]])},
        )
        # x = rho n / (2 diag + rho)
        np.testing.assert_allclose(out, [[2.0 / 4.0, 4.0 / 4.0, 6.0 / 3.0]])

    def test_zero_cost_is_identity(self):
        op = MPCCostProx(dq=1, du=1)
        n = np.array([[5.0, -3.0]])
        out = op.prox_batch(
            n, np.array([[1.0]]), {"qdiag": np.zeros((1, 1)), "rdiag": np.zeros((1, 1))}
        )
        np.testing.assert_allclose(out, n)

    def test_stationarity(self):
        op = MPCCostProx(dq=2, du=1)
        qd, rd, rho = np.array([1.5, 0.3]), np.array([2.0]), 1.7
        n = RNG.normal(size=3)
        x = op.prox(n, np.array([rho]), {"qdiag": qd, "rdiag": rd})
        diag = np.concatenate([qd, rd])
        grad = 2 * diag * x + rho * (x - n)
        np.testing.assert_allclose(grad, 0.0, atol=1e-12)

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            MPCCostProx(dq=0, du=1)

    def test_evaluate(self):
        op = MPCCostProx(dq=1, du=1)
        v = op.evaluate(
            np.array([2.0, 3.0]), {"qdiag": np.array([1.0]), "rdiag": np.array([2.0])}
        )
        assert abs(v - (4.0 + 18.0)) < 1e-12


class TestMPCDynamics:
    A = np.array([[0.0, 0.04], [-0.02, 0.0]])
    B = np.array([[0.0], [0.04]])

    def test_output_satisfies_dynamics(self):
        op = make_dynamics_prox(self.A, self.B)
        n = RNG.normal(size=(4, 6))  # (q,u) dim 3 per node, two nodes
        out = op.prox_batch(n, np.ones((4, 2)), {})
        for row in out:
            q0, u0, q1 = row[0:2], row[2:3], row[3:5]
            res = q1 - q0 - self.A @ q0 - self.B @ u0
            np.testing.assert_allclose(res, 0.0, atol=1e-9)

    def test_feasible_input_unchanged(self):
        op = make_dynamics_prox(self.A, self.B)
        q0 = RNG.normal(size=2)
        u0 = RNG.normal(size=1)
        q1 = q0 + self.A @ q0 + self.B @ u0
        u1 = RNG.normal(size=1)
        n = np.concatenate([q0, u0, q1, u1])[None, :]
        out = op.prox_batch(n, np.ones((1, 2)), {})
        np.testing.assert_allclose(out, n, atol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="square"):
            make_dynamics_prox(np.zeros((2, 3)), self.B)
        with pytest.raises(ValueError, match="dq"):
            make_dynamics_prox(self.A, np.zeros((3, 1)))

    def test_name(self):
        assert make_dynamics_prox(self.A, self.B).name == "mpc_dynamics"


class TestMPCInitialState:
    def test_pins_state_passes_input(self):
        op = make_initial_state_prox(dq=2, du=1)
        n = np.array([[9.0, 9.0, 7.0]])
        out = op.prox_batch(n, np.ones((1, 1)), {"c": np.array([[0.1, 0.2]])})
        np.testing.assert_allclose(out[0, 0:2], [0.1, 0.2], atol=1e-12)
        np.testing.assert_allclose(out[0, 2], 7.0)


class TestSVMNorm:
    def test_shrinks_w_not_b(self):
        op = SVMNormProx(dim=2, kappa=0.5)
        n = np.array([[2.0, -2.0, 3.0]])
        out = op.prox_batch(n, np.array([[1.0]]), {})
        np.testing.assert_allclose(out[0, :2], [2.0 / 1.5, -2.0 / 1.5])
        assert out[0, 2] == 3.0

    def test_stationarity(self):
        op = SVMNormProx(dim=3, kappa=0.25)
        n = RNG.normal(size=4)
        x = op.prox(n, np.array([2.0]), {})
        grad_w = 0.25 * x[:3] + 2.0 * (x[:3] - n[:3])
        np.testing.assert_allclose(grad_w, 0.0, atol=1e-12)

    def test_evaluate(self):
        op = SVMNormProx(dim=2, kappa=1.0)
        assert abs(op.evaluate(np.array([3.0, 4.0, 7.0]), {}) - 12.5) < 1e-12


class TestSVMSlack:
    def test_semi_lasso(self):
        op = SVMSlackProx(lam=1.0)
        out = op.prox_batch(np.array([[2.0], [0.5], [-1.0]]), np.ones((3, 1)), {})
        np.testing.assert_allclose(out, [[1.0], [0.0], [0.0]])

    def test_rho_scales_shift(self):
        op = SVMSlackProx(lam=2.0)
        out = op.prox(np.array([3.0]), np.array([4.0]), {})
        np.testing.assert_allclose(out, [2.5])

    def test_evaluate(self):
        op = SVMSlackProx(lam=3.0)
        assert op.evaluate(np.array([2.0]), {}) == 6.0
        assert op.evaluate(np.array([-1.0]), {}) == float("inf")


class TestSVMMargin:
    def test_feasible_unchanged(self):
        op = SVMMarginProx(dim=2)
        # w=(1,0), b=0, xi=0; point x=(2,0), y=+1: margin 2 >= 1 ok.
        n = np.array([[1.0, 0.0, 0.0, 0.0]])
        out = op.prox_batch(
            n, np.ones((1, 2)), {"x": np.array([[2.0, 0.0]]), "y": np.array([1.0])}
        )
        np.testing.assert_allclose(out, n)

    def test_violated_lands_on_boundary(self):
        op = SVMMarginProx(dim=2)
        n = np.array([[0.0, 0.0, 0.0, 0.0]])  # margin 0 < 1: violated
        x = np.array([[1.0, 1.0]])
        out = op.prox_batch(n, np.ones((1, 2)), {"x": x, "y": np.array([1.0])})
        w, b, xi = out[0, :2], out[0, 2], out[0, 3]
        g = 1.0 * (w @ x[0] + b) - 1.0 + xi
        assert abs(g) < 1e-9

    def test_negative_label(self):
        op = SVMMarginProx(dim=1)
        n = np.array([[1.0, 1.0, 0.0]])  # y=-1, x=1: y(w x + b) = -2 < 1
        out = op.prox_batch(
            n, np.ones((1, 2)), {"x": np.array([[1.0]]), "y": np.array([-1.0])}
        )
        w, b, xi = out[0, 0], out[0, 1], out[0, 2]
        g = -1.0 * (w * 1.0 + b) - 1.0 + xi
        assert g >= -1e-9

    def test_projection_optimality(self):
        # The output must be the closest point (in the weighted norm)
        # among random feasible candidates.
        op = SVMMarginProx(dim=2)
        rng = np.random.default_rng(3)
        x = np.array([0.5, -1.0])
        y = 1.0
        rho = np.array([2.0, 3.0])
        n = np.array([0.1, 0.1, -0.4, 0.05])
        out = op.prox(n, rho, {"x": x, "y": y})

        def cost(v):
            return (
                rho[0] / 2 * np.sum((v[:3] - n[:3]) ** 2)
                + rho[1] / 2 * (v[3] - n[3]) ** 2
            )

        c_opt = cost(out)
        for _ in range(300):
            cand = n + rng.normal(scale=0.6, size=4)
            if y * (cand[:2] @ x + cand[2]) >= 1.0 - cand[3]:
                assert cost(cand) >= c_opt - 1e-9

    def test_evaluate(self):
        op = SVMMarginProx(dim=1)
        params = {"x": np.array([1.0]), "y": np.array([1.0])}
        assert op.evaluate(np.array([2.0, 0.0, 0.0]), params) == 0.0
        assert op.evaluate(np.array([0.0, 0.0, 0.0]), params) == float("inf")


class TestDataFidelity:
    def test_stationarity(self):
        op = DataFidelityProx(dim=3)
        A = RNG.normal(size=(1, 5, 3))
        y = RNG.normal(size=(1, 5))
        n = RNG.normal(size=(1, 3))
        rho = np.array([[1.3]])
        x = op.prox_batch(n, rho, {"A": A, "y": y})[0]
        grad = A[0].T @ (A[0] @ x - y[0]) + 1.3 * (x - n[0])
        np.testing.assert_allclose(grad, 0.0, atol=1e-10)

    def test_batch_independent_rows(self):
        op = DataFidelityProx(dim=2)
        A = RNG.normal(size=(3, 4, 2))
        y = RNG.normal(size=(3, 4))
        n = RNG.normal(size=(3, 2))
        rho = np.full((3, 1), 2.0)
        batch = op.prox_batch(n, rho, {"A": A, "y": y})
        for i in range(3):
            single = op.prox(n[i], np.array([2.0]), {"A": A[i], "y": y[i]})
            np.testing.assert_allclose(batch[i], single, atol=1e-12)

    def test_evaluate(self):
        op = DataFidelityProx(dim=1)
        v = op.evaluate(
            np.array([1.0]), {"A": np.array([[2.0]]), "y": np.array([1.0])}
        )
        assert abs(v - 0.5) < 1e-12
