"""Three-weight algorithm on packing + the negative-radius regression.

[9]/[24] report that TWA-style weighting gives the ADMM record packing
results; here we check the mechanics: inactive constraints abstain from the
z-average, iterates stay feasible, and the radius clamp prevents the
negative-radius runaway that the paper's raw formula admits.
"""

import numpy as np
import pytest

from repro.apps.packing import PackingProblem
from repro.backends.vectorized import ThreeWeightBackend, VectorizedBackend
from repro.prox.packing import PairNoCollisionProx, RadiusRewardProx, WallProx


class TestRadiusClamp:
    def test_negative_message_projects_to_zero(self):
        op = RadiusRewardProx(kappa=1.0)
        out = op.prox(np.array([-2.0]), np.array([3.0]), {})
        np.testing.assert_array_equal(out, [0.0])

    def test_positive_message_unchanged_formula(self):
        op = RadiusRewardProx(kappa=1.0)
        out = op.prox(np.array([1.0]), np.array([3.0]), {})
        np.testing.assert_allclose(out, [1.5])

    def test_negative_radius_infeasible_in_objective(self):
        op = RadiusRewardProx()
        assert op.evaluate(np.array([-0.5]), {}) == float("inf")

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_no_runaway_across_seeds(self, seed):
        """Regression: seed 1 used to diverge to r -> -inf pre-clamp."""
        p = PackingProblem(5)
        g = p.build_graph()
        s = p.initial_state(g, rho=3.0, seed=seed)
        VectorizedBackend().run(g, s, 1500)
        centers, radii = p.extract(g, s.z)
        assert np.all(np.isfinite(s.z))
        assert np.all(radii >= -1e-9)
        assert p.validate(centers, radii)["feasible"]


class TestAbstentionWeights:
    def test_inactive_pair_abstains(self):
        op = PairNoCollisionProx()
        n = np.array([[0.0, 0.0, 0.5, 5.0, 0.0, 0.5]])  # far apart
        rho = np.ones((1, 4))
        w = op.outgoing_weights(n, n, rho, {})
        assert np.all(w == 0.0)

    def test_active_pair_votes(self):
        op = PairNoCollisionProx()
        n = np.array([[0.0, 0.0, 1.0, 1.0, 0.0, 1.0]])  # overlapping
        rho = np.full((1, 4), 2.0)
        w = op.outgoing_weights(n, n, rho, {})
        np.testing.assert_array_equal(w, rho)

    def test_wall_abstains_inside(self):
        op = WallProx()
        n = np.array([[0.0, 2.0, 1.0]])  # well inside
        rho = np.ones((1, 2))
        params = {"Q": np.array([[0.0, 1.0]]), "V": np.array([[0.0, 0.0]])}
        w = op.outgoing_weights(n, n, rho, params)
        assert np.all(w == 0.0)

    def test_wall_votes_when_violated(self):
        op = WallProx()
        n = np.array([[0.0, 0.1, 1.0]])
        rho = np.full((1, 2), 3.0)
        params = {"Q": np.array([[0.0, 1.0]]), "V": np.array([[0.0, 0.0]])}
        w = op.outgoing_weights(n, n, rho, params)
        np.testing.assert_array_equal(w, rho)


class TestTWAOnPacking:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_twa_feasible_and_competitive(self, seed):
        p = PackingProblem(5)
        g = p.build_graph()
        s_std = p.initial_state(g, rho=3.0, seed=seed)
        s_twa = s_std.copy()
        VectorizedBackend().run(g, s_std, 2000)
        ThreeWeightBackend().run(g, s_twa, 2000)
        rep_std = p.validate(*p.extract(g, s_std.z))
        rep_twa = p.validate(*p.extract(g, s_twa.z))
        assert rep_twa["feasible"]
        # TWA should be competitive with the standard weights ([9]'s claim
        # is that it is often better); allow a small slack.
        assert rep_twa["coverage"] >= rep_std["coverage"] - 0.05
