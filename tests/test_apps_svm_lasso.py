"""Tests for the SVM and Lasso applications (paper §V-C and §I)."""

import numpy as np
import pytest

from repro.apps.lasso import (
    LassoProblem,
    make_lasso_data,
    solve_lasso,
    solve_lasso_fista,
)
from repro.apps.svm import (
    SVMProblem,
    build_batch,
    make_blobs,
    solve_svm,
    solve_svm_reference,
)


class TestBlobs:
    def test_shapes_and_labels(self):
        X, y = make_blobs(40, dim=3, seed=0)
        assert X.shape == (40, 3)
        assert set(np.unique(y)) == {-1.0, 1.0}

    def test_balanced(self):
        _, y = make_blobs(100, seed=1)
        assert abs(int(y.sum())) <= 1

    def test_separation_controls_difficulty(self):
        X1, y1 = make_blobs(200, separation=6.0, seed=2)
        # Strongly separated: a simple midpoint rule classifies well.
        proj = X1 @ np.ones(2)
        acc = np.mean(np.sign(proj) == y1)
        assert acc > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            make_blobs(1)
        with pytest.raises(ValueError):
            make_blobs(10, dim=0)

    def test_deterministic(self):
        X1, _ = make_blobs(20, seed=3)
        X2, _ = make_blobs(20, seed=3)
        np.testing.assert_array_equal(X1, X2)


class TestSVMGraph:
    def test_linear_edge_growth(self):
        X, y = make_blobs(30, seed=0)
        p = SVMProblem(X, y)
        g = p.build_graph()
        assert g.num_edges == 6 * 30 - 2 == p.expected_edges

    def test_ring_adds_one_factor(self):
        X, y = make_blobs(10, seed=0)
        chain = SVMProblem(X, y, ring=False).build_graph()
        ring = SVMProblem(X, y, ring=True).build_graph()
        assert ring.num_factors == chain.num_factors + 1

    def test_plane_degree_bounded(self):
        # The paper's design point: plane-node degree stays small for any N.
        X, y = make_blobs(50, seed=0)
        g = SVMProblem(X, y).build_graph()
        assert g.var_degree.max() <= 4

    def test_validation(self):
        X, y = make_blobs(10, seed=0)
        with pytest.raises(ValueError):
            SVMProblem(X, np.ones(5))
        with pytest.raises(ValueError):
            SVMProblem(X, np.full(10, 2.0))
        with pytest.raises(ValueError):
            SVMProblem(X, y, lam=0.0)


class TestSVMSolve:
    def test_matches_reference_objective(self):
        X, y = make_blobs(24, dim=2, seed=5)
        p = SVMProblem(X, y, lam=1.0)
        out = solve_svm(p, iterations=4000)
        _, _, obj_ref = solve_svm_reference(p)
        assert out["objective"] <= obj_ref * 1.02 + 1e-6

    def test_high_accuracy_on_separated_blobs(self):
        X, y = make_blobs(40, dim=2, separation=4.0, seed=6)
        out = solve_svm(SVMProblem(X, y, lam=1.0), iterations=3000)
        assert out["accuracy"] >= 0.9

    def test_higher_dimensional_data(self):
        X, y = make_blobs(30, dim=6, separation=4.0, seed=7)
        out = solve_svm(SVMProblem(X, y, lam=1.0), iterations=3000)
        assert out["accuracy"] >= 0.85

    def test_consensus_across_copies(self):
        X, y = make_blobs(16, dim=2, seed=8)
        p = SVMProblem(X, y)
        out = solve_svm(p, iterations=4000)
        z = out["result"].z
        n, d = p.n_points, p.dim
        planes = z[: n * (d + 1)].reshape(n, d + 1)
        spread = np.max(np.abs(planes - planes.mean(axis=0)))
        assert spread < 5e-2


class TestSVMBatch:
    def make_problems(self, count=2, n_points=8):
        return [
            SVMProblem(*make_blobs(n_points, dim=2, seed=10 + i))
            for i in range(count)
        ]

    def test_build_batch_structure(self):
        problems = self.make_problems()
        batch = build_batch(problems)
        assert batch.batch_size == 2
        assert all(g.contiguous for g in batch.graph.groups)
        # Per-instance data reached the margin group's stacked params.
        margin = next(
            g for g in batch.graph.groups
            if getattr(g.prox, "name", "") == "svm_margin"
        )
        assert margin.size == 2 * problems[0].n_points

    def test_batched_iterates_match_solo(self):
        from repro.core.batched import BatchedSolver
        from repro.core.solver import ADMMSolver

        problems = self.make_problems()
        batch = build_batch(problems)
        fleet = BatchedSolver(batch, rho=1.5)
        fleet.initialize("zeros")
        fleet.iterate(40)
        z_rows = batch.split_z(fleet.state.z)
        for i, problem in enumerate(problems):
            solo = ADMMSolver(problem.build_graph(), rho=1.5)
            solo.initialize("zeros")
            solo.iterate(40)
            np.testing.assert_allclose(z_rows[i], solo.state.z, atol=1e-10)

    def test_mismatched_shape_rejected(self):
        problems = [
            SVMProblem(*make_blobs(8, dim=2, seed=1)),
            SVMProblem(*make_blobs(10, dim=2, seed=2)),
        ]
        with pytest.raises(ValueError, match="n_points"):
            build_batch(problems)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_batch([])


class TestLassoData:
    def test_shapes(self):
        A, y, w = make_lasso_data(50, 20, sparsity=4, seed=0)
        assert A.shape == (50, 20)
        assert y.shape == (50,)
        assert np.count_nonzero(w) == 4

    def test_sparsity_validation(self):
        with pytest.raises(ValueError):
            make_lasso_data(10, 5, sparsity=6)


class TestLassoSolve:
    def test_fista_reference_decreases_objective(self):
        A, y, _ = make_lasso_data(40, 15, seed=1)
        p = LassoProblem(A, y, lam=0.1)
        w = solve_lasso_fista(A, y, 0.1)
        assert p.objective(w) <= p.objective(np.zeros(15))

    def test_admm_matches_fista(self):
        A, y, _ = make_lasso_data(60, 20, seed=2)
        p = LassoProblem(A, y, lam=0.05, n_blocks=4)
        out = solve_lasso(p, iterations=4000)
        w_ref = solve_lasso_fista(A, y, 0.05)
        assert out["objective"] == pytest.approx(p.objective(w_ref), rel=1e-5)
        np.testing.assert_allclose(out["w"], w_ref, atol=1e-4)

    def test_uneven_blocks_padded_correctly(self):
        # 7 rows into 3 blocks: shapes 3/2/2 padded to 3.
        A, y, _ = make_lasso_data(7, 4, sparsity=2, seed=3)
        p = LassoProblem(A, y, lam=0.05, n_blocks=3)
        out = solve_lasso(p, iterations=3000)
        w_ref = solve_lasso_fista(A, y, 0.05)
        np.testing.assert_allclose(out["w"], w_ref, atol=1e-3)

    def test_single_block_equals_multi_block(self):
        A, y, _ = make_lasso_data(30, 10, seed=4)
        out1 = solve_lasso(LassoProblem(A, y, lam=0.1, n_blocks=1), iterations=4000)
        out4 = solve_lasso(LassoProblem(A, y, lam=0.1, n_blocks=4), iterations=4000)
        np.testing.assert_allclose(out1["w"], out4["w"], atol=1e-3)

    def test_strong_regularization_zeroes_solution(self):
        A, y, _ = make_lasso_data(30, 10, noise=0.0, seed=5)
        lam_max = float(np.max(np.abs(A.T @ y)))
        out = solve_lasso(
            LassoProblem(A, y, lam=2.0 * lam_max, n_blocks=2), iterations=2000
        )
        np.testing.assert_allclose(out["w"], 0.0, atol=1e-6)

    def test_validation(self):
        A, y, _ = make_lasso_data(10, 5, sparsity=2, seed=6)
        with pytest.raises(ValueError):
            LassoProblem(A, y, lam=-1.0)
        with pytest.raises(ValueError):
            LassoProblem(A, y, lam=0.1, n_blocks=0)
        with pytest.raises(ValueError):
            LassoProblem(A, np.zeros(3), lam=0.1)
