"""Property-based tests on whole-engine invariants (hypothesis).

Beyond per-operator properties, the *engine* guarantees structure:

* the z array always lies in the convex hull of the incoming messages;
* at a consensus fixed point of convex quadratic problems, iteration is
  stationary (the engine doesn't drift off optima);
* residuals on strongly convex problems trend to zero;
* iterates depend deterministically on (graph, seed, backend).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.vectorized import VectorizedBackend
from repro.core import updates
from repro.core.residuals import compute_residuals
from repro.core.solver import ADMMSolver
from repro.core.state import ADMMState
from repro.graph.builder import GraphBuilder
from repro.prox.standard import ConsensusEqualProx, DiagQuadProx


def random_quadratic_graph(rng, n_vars=4, dim=2, chain=True):
    """Strongly convex random quadratic consensus problem."""
    b = GraphBuilder()
    vs = b.add_variables(n_vars, dim=dim)
    dq = DiagQuadProx(dims=(dim,))
    ce = ConsensusEqualProx(k=2, dim=dim)
    targets = []
    for v in vs:
        t = rng.normal(size=dim)
        targets.append(t)
        b.add_factor(
            dq, [v], params={"q": rng.uniform(0.5, 2.0, dim), "c": -t}
        )
    if chain:
        for i in range(n_vars - 1):
            b.add_factor(ce, [vs[i], vs[i + 1]])
    return b.build()


class TestZConvexHull:
    @given(seed=st.integers(0, 5000), iters=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_z_in_message_hull_after_any_iterations(self, seed, iters):
        rng = np.random.default_rng(seed)
        g = random_quadratic_graph(rng)
        s = ADMMState(g, rho=float(rng.uniform(0.5, 3.0)))
        s.init_random(seed=seed)
        VectorizedBackend().run(g, s, iters)
        for bvar in range(g.num_vars):
            edges = g.edges_of_var(bvar)
            msgs = np.stack([s.m[g.edge_slots(e)] for e in edges])
            zb = s.z[g.var_slots(bvar)]
            assert np.all(zb >= msgs.min(axis=0) - 1e-10)
            assert np.all(zb <= msgs.max(axis=0) + 1e-10)


class TestFixedPoint:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_converged_solution_is_stationary(self, seed):
        rng = np.random.default_rng(seed)
        g = random_quadratic_graph(rng, n_vars=3)
        solver = ADMMSolver(g, rho=1.0)
        res = solver.solve(max_iterations=6000, eps_abs=1e-12, eps_rel=1e-11)
        z_star = solver.state.z.copy()
        # Keep iterating from the converged state: z must stay put.
        solver.iterate(25)
        assert np.max(np.abs(solver.state.z - z_star)) < 1e-6


class TestResidualTrend:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_primal_residual_decreases_over_blocks(self, seed):
        rng = np.random.default_rng(seed)
        g = random_quadratic_graph(rng)
        s = ADMMState(g, rho=1.0).init_random(seed=seed)
        backend = VectorizedBackend()

        def primal_after(extra):
            backend.run(g, s, extra - 1)
            z_prev = s.z.copy()
            backend.run(g, s, 1)
            return compute_residuals(g, s, z_prev).primal

        early = primal_after(10)
        late = primal_after(200)
        assert late <= early + 1e-9


class TestDeterminism:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_iterates(self, seed):
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        g1 = random_quadratic_graph(rng1)
        g2 = random_quadratic_graph(rng2)
        s1 = ADMMState(g1).init_random(seed=seed)
        s2 = ADMMState(g2).init_random(seed=seed)
        VectorizedBackend().run(g1, s1, 7)
        VectorizedBackend().run(g2, s2, 7)
        np.testing.assert_array_equal(s1.z, s2.z)


class TestScaleInvariance:
    def test_objective_scaling_scales_solution_of_anchor(self):
        # min q/2 (x-t)^2 alone: solution independent of q and rho.
        for q in (0.5, 1.0, 5.0):
            b = GraphBuilder()
            w = b.add_variable(1)
            b.add_factor(
                DiagQuadProx(dims=(1,)), [w], params={"q": [q], "c": [-q * 3.0]}
            )
            res = ADMMSolver(b.build()).solve(max_iterations=500)
            np.testing.assert_allclose(res.variable(0), [3.0], atol=1e-6)

    def test_rho_does_not_change_fixed_point(self):
        rng = np.random.default_rng(0)
        g = random_quadratic_graph(rng, n_vars=3)
        sols = []
        for rho in (0.3, 1.0, 4.0):
            res = ADMMSolver(g, rho=rho).solve(
                max_iterations=20000, eps_abs=1e-12, eps_rel=1e-11, check_every=50
            )
            sols.append(res.z)
        np.testing.assert_allclose(sols[0], sols[1], atol=1e-5)
        np.testing.assert_allclose(sols[1], sols[2], atol=1e-5)
