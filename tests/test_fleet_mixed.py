"""Mixed-family fleet equivalence matrix (ISSUE 9).

The heterogeneous-batch claim: packing instances of *different* app
families (MPC + SVM + lasso + packing) into one group-major fleet through
:func:`repro.graph.batch.pack_graphs` is numerically identical to solving
each instance alone — per-instance iterates match a solo solve at 1e-10
for classic/three-weight/async x plain/sharded/rebalancing, under elastic
add/remove, stealing churn, a worker kill, and `FleetService` admission.

Homogeneous packing must stay *bit-identical* to
:func:`repro.graph.batch.replicate_graph` (it delegates), so every
existing fleet layout is unchanged.

The ISSUE 9 satellite bugfixes are pinned at the bottom: writable
``normalize_pool`` rows, no template param aliasing in
``replicate_graph``, and clear errors (not opaque numpy ones) for
generator inputs and shape mismatches in ``pack_z``/``normalize_pool``.
"""

import numpy as np
import pytest

from repro.apps.lasso import LassoProblem, make_lasso_data
from repro.backends.randomized import FleetRandomizedBackend, RandomizedBackend
from repro.backends.vectorized import ThreeWeightBackend, VectorizedBackend
from repro.bench.workloads import mpc_graph, packing_graph, svm_graph
from repro.core.batched import BatchedSolver, normalize_pool
from repro.core.rebalance import RebalancingShardedSolver
from repro.core.service import FleetService
from repro.core.sharded import ShardedBatchedSolver
from repro.core.solver import ADMMSolver
from repro.graph.batch import pack_batches, pack_graphs, replicate_graph
from repro.testing.faults import kill_worker

ITERATIONS = 20
RHO = 1.7
ATOL = 1e-10
FRACTION = 0.6
SEED = 411
CHECK = 10
VARIANTS = ("classic", "three_weight", "async")


def lasso_graph(seed: int = 7):
    A, y, _ = make_lasso_data(16, 5, seed=seed)
    return LassoProblem(A, y, lam=0.1, n_blocks=3).build_graph()


@pytest.fixture(scope="module")
def templates():
    """One template per app family: MPC, SVM, lasso, packing."""
    return [mpc_graph(5), svm_graph(10, seed=3), lasso_graph(), packing_graph(3)]


COUNTS = [2, 1, 1, 2]  # B = 6 instances across the four families


def instance_templates(templates):
    return [t for t, c in zip(templates, COUNTS) for _ in range(c)]


def mixed_batch(templates):
    return pack_graphs(templates, COUNTS)


def solo_backend(variant, instance):
    if variant == "classic":
        return VectorizedBackend()
    if variant == "three_weight":
        return ThreeWeightBackend()
    return RandomizedBackend(FRACTION, seed=SEED + instance)


@pytest.fixture(scope="module")
def solo_refs(templates):
    """Per-variant solo iterates: the ground truth every mixed cell must hit."""
    out = {}
    for variant in VARIANTS:
        refs = []
        for i, t in enumerate(instance_templates(templates)):
            solver = ADMMSolver(t, backend=solo_backend(variant, i), rho=RHO)
            solver.initialize("zeros")
            solver.iterate(ITERATIONS)
            refs.append(solver.state.z.copy())
            solver.close()
        out[variant] = refs
    return out


def assert_matches_solo(batch, z_flat, refs, label):
    rows = batch.split_z(z_flat)
    for i, z_ref in enumerate(refs):
        np.testing.assert_allclose(
            rows[i], z_ref, atol=ATOL,
            err_msg=f"{label}: instance {i} diverged from its solo solve",
        )


# --------------------------------------------------------------------- #
# Homogeneous packing IS replication — bit-identical layout.             #
# --------------------------------------------------------------------- #
def test_pack_homogeneous_is_bit_identical(templates):
    t = templates[0]
    packed = pack_graphs([t], [3])
    replicated = replicate_graph(t, 3)
    assert packed.uniform
    assert np.array_equal(packed.factor_index, replicated.factor_index)
    assert np.array_equal(packed.edge_index, replicated.edge_index)
    assert np.array_equal(packed.slot_index, replicated.slot_index)
    assert packed.graph.z_size == replicated.graph.z_size
    for gp, gr in zip(packed.graph.groups, replicated.graph.groups):
        assert np.array_equal(gp.factor_ids, gr.factor_ids)
        for key in gr.params:
            assert np.array_equal(gp.params[key], gr.params[key])


def test_mixed_batch_groups_bucket_by_operator(templates):
    batch = mixed_batch(templates)
    assert not batch.uniform
    assert batch.batch_size == sum(COUNTS)
    # Same-template instances merge their groups; different families never
    # share a bucket — so the group count is the sum of per-template group
    # counts over *distinct* templates.
    expected = sum(len(t.groups) for t in templates)
    assert len(batch.graph.groups) == expected
    # Exact per-instance maps: every batched factor belongs to exactly one
    # instance, and gathers recover each instance's own factor count.
    seen = np.concatenate([np.asarray(fi) for fi in batch.factor_index])
    assert sorted(seen.tolist()) == list(range(batch.graph.num_factors))
    for i, t in enumerate(instance_templates(templates)):
        assert len(batch.factor_index[i]) == t.num_factors
        assert batch.z_size_of(i) == t.z_size


# --------------------------------------------------------------------- #
# Plain mixed fleet: one BatchedSolver over all four families.           #
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("variant", VARIANTS)
def test_plain_mixed_matches_solo(variant, templates, solo_refs):
    batch = mixed_batch(templates)
    if variant == "classic":
        backend = VectorizedBackend()
    elif variant == "three_weight":
        backend = ThreeWeightBackend()
    else:
        backend = FleetRandomizedBackend(batch, fraction=FRACTION, seed=SEED)
    solver = BatchedSolver(batch, backend=backend, rho=RHO)
    try:
        solver.initialize("zeros")
        solver.iterate(ITERATIONS)
        assert_matches_solo(
            batch, solver.state.z, solo_refs[variant], f"plain/{variant}"
        )
    finally:
        solver.close()


# --------------------------------------------------------------------- #
# Sharded mixed fleet.                                                   #
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("variant", VARIANTS)
def test_sharded_mixed_matches_solo(variant, templates, solo_refs):
    batch = mixed_batch(templates)
    kwargs = {"fraction": FRACTION, "seed": SEED} if variant == "async" else {}
    with ShardedBatchedSolver(
        batch, num_shards=3, mode="thread", variant=variant, rho=RHO, **kwargs
    ) as solver:
        solver.initialize("zeros")
        solver.iterate(ITERATIONS)
        fleet_rows = solver.split_z()
        for i, z_ref in enumerate(solo_refs[variant]):
            np.testing.assert_allclose(
                fleet_rows[i], z_ref, atol=ATOL,
                err_msg=f"sharded/{variant}: instance {i} diverged",
            )


def test_sharded_mixed_process_mode(templates, solo_refs):
    batch = mixed_batch(templates)
    with ShardedBatchedSolver(
        batch, num_shards=2, mode="process", rho=RHO
    ) as solver:
        solver.initialize("zeros")
        solver.iterate(ITERATIONS)
        fleet_rows = solver.split_z()
        for i, z_ref in enumerate(solo_refs["classic"]):
            np.testing.assert_allclose(
                fleet_rows[i], z_ref, atol=ATOL,
                err_msg=f"sharded/process: instance {i} diverged",
            )


# --------------------------------------------------------------------- #
# Rebalancing mixed fleet: stealing + reshard churn, worker kill.        #
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("variant", VARIANTS)
def test_rebalancing_mixed_matches_solo_under_churn(
    variant, templates, solo_refs
):
    batch = mixed_batch(templates)
    kwargs = {"fraction": FRACTION, "seed": SEED} if variant == "async" else {}
    with RebalancingShardedSolver(
        batch, num_shards=3, mode="thread", variant=variant, rho=RHO, **kwargs
    ) as solver:
        solver.initialize("zeros")
        solver.iterate(8)
        solver.steal_once()  # scripted churn mid-solve
        solver.iterate(6)
        solver.reshard(2)
        solver.iterate(ITERATIONS - 14)
        rows = solver.split_z()
        for i, z_ref in enumerate(solo_refs[variant]):
            np.testing.assert_allclose(
                rows[i], z_ref, atol=ATOL,
                err_msg=f"rebalancing/{variant}: instance {i} diverged",
            )


def test_rebalancing_mixed_worker_kill(templates, solo_refs):
    batch = mixed_batch(templates)
    with RebalancingShardedSolver(
        batch, num_shards=2, mode="process", rho=RHO
    ) as solver:
        solver.initialize("zeros")
        solver.iterate(8)
        kill_worker(solver, 0)
        solver.iterate(ITERATIONS - 8)
        rows = solver.split_z()
        for i, z_ref in enumerate(solo_refs["classic"]):
            np.testing.assert_allclose(
                rows[i], z_ref, atol=ATOL,
                err_msg=f"rebalancing/kill: instance {i} diverged",
            )


# --------------------------------------------------------------------- #
# Elastic mixed rosters: add/remove across families.                     #
# --------------------------------------------------------------------- #
def test_mixed_elastic_add_preserves_survivors(templates):
    t_mpc, t_svm, _, t_pack = templates
    batch = pack_graphs([t_mpc, t_svm], [2, 1])
    with RebalancingShardedSolver(
        batch, num_shards=2, mode="thread", rho=RHO
    ) as solver:
        solver.initialize("zeros")
        solver.iterate(5)
        before = [solver.split_z()[g].copy() for g in range(3)]
        solver.add_instances([{}], templates=[t_pack])
        assert solver.batch_size == 4
        assert not solver.batch.uniform
        after = solver.split_z()
        for g in range(3):
            assert np.array_equal(before[g], after[g])
        # the newcomer is cold with the construction-time penalties
        assert np.array_equal(after[3], np.zeros(t_pack.z_size))
        assert np.allclose(solver.rho_rows()[3], RHO)
        solver.iterate(5)
        solver.remove_instances([1])
        assert solver.batch_size == 3


def test_mixed_remove_collapses_to_uniform(templates):
    t_mpc, t_svm = templates[0], templates[1]
    batch = pack_graphs([t_mpc, t_svm], [2, 1])
    shrunk = batch.remove_instances([2])  # drop the lone SVM instance
    assert shrunk.uniform
    reference = replicate_graph(t_mpc, 2)
    assert np.array_equal(shrunk.factor_index, reference.factor_index)
    assert np.array_equal(shrunk.edge_index, reference.edge_index)


# --------------------------------------------------------------------- #
# FleetService: mixed-family admission in one live fleet.                #
# --------------------------------------------------------------------- #
def _solo_service_ref(template, cap):
    solver = BatchedSolver(replicate_graph(template, 1), rho=RHO)
    try:
        return solver.solve_batch(
            max_iterations=cap, check_every=CHECK, init="zeros"
        )[0]
    finally:
        solver.close()


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_service_mixed_admission_matches_solo(mode, templates):
    t_mpc, t_svm, t_lasso, t_pack = templates
    service = FleetService(
        t_mpc, rho=RHO, num_shards=2, mode=mode,
        check_every=CHECK, max_iterations=60,
    )
    try:
        submitted = {}
        submitted[service.submit()] = t_mpc
        submitted[service.submit(template=t_svm)] = t_svm
        submitted[service.submit(template=t_pack)] = t_pack
        service.step()
        # churn: a second admission wave while the fleet is live, plus a
        # reshard and (in process mode) a worker kill
        submitted[service.submit(template=t_lasso)] = t_lasso
        submitted[service.submit(template=t_pack)] = t_pack
        service.step()
        if service.solver is not None:
            service.solver.reshard(2)
            if mode == "process":
                kill_worker(service.solver, 0)
        service.drain()
        done = service.completed
        assert len(done) == len(submitted)
        for r in done:
            ref = _solo_service_ref(submitted[r.request_id], 60)
            np.testing.assert_allclose(
                r.result.z, ref.z, atol=ATOL,
                err_msg=f"service/{mode}: request {r.request_id} diverged",
            )
            assert r.result.converged == ref.converged
    finally:
        service.close()


def test_service_rejects_degenerate_request_template(templates):
    from repro.graph.builder import GraphBuilder
    from repro.prox.standard import DiagQuadProx

    b = GraphBuilder()
    v = b.add_variable(2)
    b.add_variable(1)  # isolated — never appears in a factor scope
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [v],
        params={"q": np.ones(2), "c": np.zeros(2)},
    )
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        degenerate = b.build()
    service = FleetService(templates[0], rho=RHO)
    try:
        with pytest.raises(ValueError, match="degenerate"):
            service.submit(template=degenerate)
    finally:
        service.close()


def test_pack_batches_concatenates_existing_fleets(templates):
    t_mpc, t_svm = templates[0], templates[1]
    fleet = pack_batches(
        [replicate_graph(t_mpc, 2), replicate_graph(t_svm, 1)]
    )
    assert fleet.batch_size == 3 and not fleet.uniform
    assert fleet.z_size_of(0) == t_mpc.z_size
    assert fleet.z_size_of(2) == t_svm.z_size


# --------------------------------------------------------------------- #
# ISSUE 9 satellite bugfixes.                                            #
# --------------------------------------------------------------------- #
def test_normalize_pool_single_vector_rows_are_writable():
    rows = normalize_pool(np.arange(4.0), 3, 4)
    rows[0, 0] = 99.0  # raised ValueError (read-only broadcast) before
    assert rows[1, 0] == 0.0 and rows[2, 0] == 0.0
    assert rows[0, 0] == 99.0


def test_replicate_graph_no_override_does_not_alias_template(templates):
    t = templates[0]
    batch = replicate_graph(t, 2)
    factor_id = 0
    key = next(iter(t.factors[factor_id].params))
    original = np.array(t.factors[factor_id].params[key], copy=True)
    # Mutating the template after replication must not bleed into the
    # batch (or vice versa) — the params were aliased before the fix.
    t.factors[factor_id].params[key] += 1000.0
    try:
        for i in range(2):
            got = batch.instance_params(i)[factor_id][key]
            assert np.array_equal(np.asarray(got), original)
    finally:
        t.factors[factor_id].params[key] -= 1000.0


def test_instance_params_round_trip_through_elastic_resize(templates):
    t = templates[1]
    batch = replicate_graph(t, 2)
    grown = batch.append_instances([batch.instance_params(0)])
    # Mutating the donor instance's recovered params must not affect the
    # newly appended instance (copy-on-merge, not aliasing).
    donor = batch.instance_params(0)
    fid, key = next(
        (f, k) for f, kv in donor.items() for k in kv
    )
    expected = np.array(donor[fid][key], copy=True)
    donor[fid][key][...] = -1.0
    assert np.array_equal(
        np.asarray(grown.instance_params(2)[fid][key]), expected
    )


def test_pack_z_accepts_generators_and_reports_shape_mismatch(templates):
    t = templates[0]
    batch = replicate_graph(t, 3)
    rows = [np.full(t.z_size, float(i)) for i in range(3)]
    packed = batch.pack_z(r for r in rows)  # generator, not list
    assert np.array_equal(batch.split_z(packed), np.stack(rows))
    with pytest.raises(ValueError, match="mismatched per-instance shapes"):
        batch.pack_z(r[: len(r) - i] for i, r in enumerate(rows))
    mixed = pack_graphs([templates[0], templates[1]], [1, 1])
    vecs = [np.zeros(templates[0].z_size), np.zeros(templates[1].z_size)]
    packed = mixed.pack_z(v for v in vecs)
    assert packed.shape == (mixed.graph.z_size,)
    with pytest.raises(ValueError, match="instance 1 z vector"):
        mixed.pack_z([vecs[0], vecs[1][:-1]])


def test_normalize_pool_accepts_generators_and_reports_mismatch():
    rows = [np.zeros(4), np.ones(4)]
    pool = normalize_pool((r for r in rows), 4, 4)
    assert pool.shape == (4, 4)
    assert np.array_equal(pool[2], rows[0])  # cycling
    with pytest.raises(ValueError, match="mismatched row shapes"):
        normalize_pool((r[: 2 + i] for i, r in enumerate(rows)), 4, 4)
