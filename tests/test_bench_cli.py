"""Tests for the command-line figure runner."""

import pytest

from repro.bench.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "ntb" in out

    def test_fig05(self, capsys):
        assert main(["fig05"]) == 0
        assert "parADMM" in capsys.readouterr().out

    def test_fig07_small_sizes(self, capsys):
        assert main(["fig07", "--sizes", "50", "100"]) == 0
        out = capsys.readouterr().out
        assert "packing" in out and "speedup" in out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--sizes", "100"]) == 0
        assert "mpc" in capsys.readouterr().out

    def test_fig13_small(self, capsys):
        assert main(["fig13", "--sizes", "100"]) == 0
        assert "svm" in capsys.readouterr().out

    def test_fleet_small(self, capsys):
        assert main(["fleet", "--sizes", "2", "4", "--horizon", "4"]) == 0
        out = capsys.readouterr().out
        assert "fleet" in out and "speedup" in out

    def test_ntb_sweep(self, capsys):
        assert main(["ntb", "--packing-n", "200"]) == 0
        assert "best" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])
