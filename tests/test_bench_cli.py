"""Tests for the command-line figure runner."""

import pytest

from repro.bench.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "ntb" in out

    def test_fig05(self, capsys):
        assert main(["fig05"]) == 0
        assert "parADMM" in capsys.readouterr().out

    def test_fig07_small_sizes(self, capsys):
        assert main(["fig07", "--sizes", "50", "100"]) == 0
        out = capsys.readouterr().out
        assert "packing" in out and "speedup" in out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--sizes", "100"]) == 0
        assert "mpc" in capsys.readouterr().out

    def test_fig13_small(self, capsys):
        assert main(["fig13", "--sizes", "100"]) == 0
        assert "svm" in capsys.readouterr().out

    def test_fleet_small(self, capsys):
        assert main(["fleet", "--sizes", "2", "4", "--horizon", "4"]) == 0
        out = capsys.readouterr().out
        assert "fleet" in out and "speedup" in out

    def test_fleet_shards_exceeding_smallest_b_is_a_clear_error(self, capsys):
        """--shards N with N > B must refuse loudly, not clamp or spawn
        empty shards (ISSUE 5 satellite bugfix)."""
        assert main(["fleet", "--sizes", "2", "8", "--shards", "4"]) == 2
        err = capsys.readouterr().err
        assert "empty shards are not allowed" in err
        assert "--shards 4" in err and "B=2" in err

    def test_fleet_rebalance_demo(self, capsys):
        assert (
            main(
                [
                    "fleet",
                    "--sizes", "4",
                    "--horizon", "4",
                    "--rebalance",
                    "--steal-threshold", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Rebalancing fleet demo" in out
        assert "bit-identical" in out
        assert "steal @ iter" in out  # the uneven demo fleet must steal

    def test_ntb_sweep(self, capsys):
        assert main(["ntb", "--packing-n", "200"]) == 0
        assert "best" in capsys.readouterr().out

    def test_serve_small(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert (
            main(
                [
                    "serve",
                    "--requests", "6",
                    "--seed", "0",
                    "--horizon", "3",
                    "--check-every", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "p50 latency" in out and "inst/s" in out
        assert "max |dz| vs solo" in out
        assert "latency histogram" in out
        report = (tmp_path / "fleet_service.txt").read_text()
        assert "Fleet service" in report

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])


class TestExitCodes:
    """Failing sub-demos must propagate into the process exit code.

    Regression for the bug where ``fleet --elastic``/``--rebalance``
    discarded their demos' return values, so an invariant violation
    printed a table but exited 0 (green CI over a broken solve).
    """

    def test_fleet_propagates_elastic_demo_failure(self, monkeypatch):
        import repro.bench.cli as cli

        monkeypatch.setattr(
            cli, "run_fleet_elastic_demo", lambda args, iterations: 1
        )
        assert main(["fleet", "--sizes", "2", "--horizon", "3", "--elastic"]) == 1

    def test_fleet_propagates_rebalance_demo_failure(self, monkeypatch):
        import repro.bench.cli as cli

        monkeypatch.setattr(
            cli, "run_fleet_rebalance_demo", lambda args, tracer=None: 1
        )
        assert (
            main(["fleet", "--sizes", "2", "--horizon", "3", "--rebalance"]) == 1
        )

    def test_fleet_propagates_worst_demo_code(self, monkeypatch):
        import repro.bench.cli as cli

        monkeypatch.setattr(
            cli, "run_fleet_elastic_demo", lambda args, iterations: 0
        )
        monkeypatch.setattr(
            cli, "run_fleet_rebalance_demo", lambda args, tracer=None: 2
        )
        assert (
            main(
                [
                    "fleet",
                    "--sizes", "2",
                    "--horizon", "3",
                    "--elastic",
                    "--rebalance",
                ]
            )
            == 2
        )

    def test_serve_propagates_failure(self, monkeypatch):
        import repro.bench.cli as cli

        monkeypatch.setattr(cli, "run_serve", lambda args: 1)
        assert main(["serve"]) == 1
