"""Tests for the MPC application (paper §V-B)."""

import numpy as np
import pytest

from repro.apps.mpc import (
    MPCProblem,
    build_batch,
    default_problem,
    inverted_pendulum,
    solve_mpc,
    solve_mpc_batch,
    solve_mpc_exact,
)


class TestPendulum:
    def test_dimensions(self):
        A, B = inverted_pendulum()
        assert A.shape == (4, 4)
        assert B.shape == (4, 1)

    def test_sampling_time_scales(self):
        A1, B1 = inverted_pendulum(dt=0.04)
        A2, B2 = inverted_pendulum(dt=0.08)
        np.testing.assert_allclose(A2, 2 * A1)
        np.testing.assert_allclose(B2, 2 * B1)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            inverted_pendulum(dt=0.0)

    def test_unstable_open_loop(self):
        # The upright pendulum is unstable: I + A has an eigenvalue > 1.
        A, _ = inverted_pendulum()
        eigs = np.linalg.eigvals(np.eye(4) + A)
        assert np.max(np.abs(eigs)) > 1.0


class TestProblemConstruction:
    def test_linear_edge_growth(self):
        p1 = default_problem(10)
        p2 = default_problem(20)
        g1, g2 = p1.build_graph(), p2.build_graph()
        assert g1.num_edges == 3 * 10 + 2 == p1.expected_edges
        assert g2.num_edges == 3 * 20 + 2 == p2.expected_edges

    def test_node_count(self):
        g = default_problem(15).build_graph()
        assert g.num_vars == 16  # K+1 state-input nodes

    def test_validation(self):
        A, B = inverted_pendulum()
        with pytest.raises(ValueError):
            MPCProblem(A=A, B=B, q0=np.zeros(4), horizon=0)
        with pytest.raises(ValueError):
            MPCProblem(A=A, B=B, q0=np.zeros(3), horizon=5)
        with pytest.raises(ValueError):
            MPCProblem(A=np.zeros((4, 3)), B=B, q0=np.zeros(4), horizon=5)
        with pytest.raises(ValueError):
            MPCProblem(A=A, B=B, q0=np.zeros(4), horizon=5, q_diag=-np.ones(4))

    def test_extract_shapes(self):
        p = default_problem(8)
        g = p.build_graph()
        states, inputs = p.extract(np.zeros(g.z_size))
        assert states.shape == (9, 4)
        assert inputs.shape == (9, 1)


class TestExactSolver:
    def test_satisfies_constraints(self):
        p = default_problem(30)
        states, inputs, obj = solve_mpc_exact(p)
        assert p.dynamics_violation(states, inputs) < 1e-9
        assert obj > 0

    def test_objective_consistent(self):
        p = default_problem(10)
        states, inputs, obj = solve_mpc_exact(p)
        assert obj == pytest.approx(p.objective(states, inputs))

    def test_zero_initial_state_gives_zero_solution(self):
        p = default_problem(10, q0=np.zeros(4))
        states, inputs, obj = solve_mpc_exact(p)
        assert obj == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(states, 0.0, atol=1e-9)


class TestADMMvsExact:
    def test_small_horizon_matches_kkt(self):
        p = default_problem(5)
        out = solve_mpc(p, iterations=8000, rho=10.0)
        _, _, obj_exact = solve_mpc_exact(p)
        assert out["dynamics_violation"] < 1e-6
        assert out["objective"] == pytest.approx(obj_exact, rel=1e-4)

    def test_trajectories_match_kkt(self):
        p = default_problem(5)
        out = solve_mpc(p, iterations=8000, rho=10.0)
        states_ex, inputs_ex, _ = solve_mpc_exact(p)
        np.testing.assert_allclose(out["states"], states_ex, atol=1e-4)
        np.testing.assert_allclose(out["inputs"], inputs_ex, atol=1e-4)

    def test_longer_horizon_converging(self):
        p = default_problem(20)
        out = solve_mpc(p, iterations=6000, rho=10.0)
        _, _, obj_exact = solve_mpc_exact(p)
        # Chain diffusion is slow; require the right ballpark + feasibility
        # trending to zero rather than exact agreement.
        assert out["dynamics_violation"] < 5e-2
        assert out["objective"] < 2.0 * obj_exact + 1.0


class TestMPCBatch:
    def make_problems(self, count=3, horizon=5):
        A, B = inverted_pendulum()
        return [
            MPCProblem(
                A=A,
                B=B,
                q0=np.array([0.05 * (i + 1), 0.0, 0.02 * i, 0.0]),
                horizon=horizon,
            )
            for i in range(count)
        ]

    def test_build_batch_structure(self):
        problems = self.make_problems()
        batch = build_batch(problems)
        assert batch.batch_size == 3
        assert batch.template.num_factors == 2 * 5 + 2
        assert all(g.contiguous for g in batch.graph.groups)

    def test_batch_matches_solo_solves(self):
        problems = self.make_problems()
        out = solve_mpc_batch(problems, iterations=2000, rho=10.0)
        for problem, fleet in zip(problems, out):
            solo = solve_mpc(problem, iterations=2000, rho=10.0)
            np.testing.assert_allclose(
                fleet["states"], solo["states"], atol=1e-8
            )
            np.testing.assert_allclose(
                fleet["objective"], solo["objective"], rtol=1e-6
            )
            assert fleet["dynamics_violation"] < 1e-2

    def test_mismatched_horizon_rejected(self):
        A, B = inverted_pendulum()
        q0 = np.zeros(4)
        problems = [
            MPCProblem(A=A, B=B, q0=q0, horizon=4),
            MPCProblem(A=A, B=B, q0=q0, horizon=5),
        ]
        with pytest.raises(ValueError, match="horizon"):
            build_batch(problems)

    def test_mismatched_dynamics_rejected(self):
        A, B = inverted_pendulum()
        q0 = np.zeros(4)
        problems = [
            MPCProblem(A=A, B=B, q0=q0, horizon=4),
            MPCProblem(A=2.0 * A, B=B, q0=q0, horizon=4),
        ]
        with pytest.raises(ValueError, match="dynamics"):
            build_batch(problems)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_batch([])


class TestWarmStartMPC:
    def test_receding_horizon_reuse(self):
        """The paper's real-time trick: reuse the graph, update q0, warm-start."""
        from repro.core.solver import ADMMSolver

        p = default_problem(5)
        graph = p.build_graph()
        solver = ADMMSolver(graph, rho=10.0)
        first = solver.solve(max_iterations=4000, check_every=100)
        # New measured state arrives: rebuild only the init factor's params.
        solver.warm_start(first.z)
        second = solver.solve(max_iterations=500, init="keep", check_every=50)
        states, inputs = p.extract(second.z)
        assert p.dynamics_violation(states, inputs) < 1e-2
