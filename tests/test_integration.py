"""Cross-module integration tests: full pipelines on every application.

These are the "does the whole system reproduce the math" checks — each one
runs graph construction → solver → solution extraction → validation against
an independent reference, mirroring how the examples use the public API.
"""

import numpy as np
import pytest

import repro
from repro.apps.lasso import LassoProblem, make_lasso_data, solve_lasso_fista
from repro.apps.mpc import default_problem, solve_mpc_exact
from repro.apps.packing import PackingProblem, square_region
from repro.apps.svm import SVMProblem, make_blobs, solve_svm_reference
from repro.backends.threaded import ThreadedBackend
from repro.backends.vectorized import VectorizedBackend
from repro.core.solver import ADMMSolver
from repro.core.stopping import MaxIterations


class TestPublicAPI:
    def test_top_level_exports(self):
        for name in (
            "GraphBuilder",
            "ADMMSolver",
            "SerialBackend",
            "VectorizedBackend",
            "ThreadedBackend",
            "ProcessBackend",
        ):
            assert hasattr(repro, name)

    def test_version(self):
        assert repro.__version__

    def test_docstring_example_runs(self):
        from repro.prox import DiagQuadProx

        b = repro.GraphBuilder()
        w = b.add_variable(dim=2)
        b.add_factor(
            DiagQuadProx(dims=(2,)),
            [w],
            params={"q": [1.0, 1.0], "c": [-2.0, 2.0]},
        )
        result = repro.ADMMSolver(b.build()).solve(max_iterations=200)
        np.testing.assert_allclose(result.variable(w), [2.0, -2.0], atol=1e-4)


class TestEndToEndPacking:
    def test_two_disks_in_square(self):
        p = PackingProblem(2, region=square_region(1.0))
        g = p.build_graph()
        solver = ADMMSolver(g, rho=3.0)
        solver.state = p.initial_state(g, rho=3.0, seed=4)
        result = solver.solve(
            max_iterations=1500, stopping=MaxIterations(1500), check_every=300, init="keep"
        )
        centers, radii = p.extract(g, result.z)
        rep = p.validate(centers, radii)
        assert rep["feasible"]
        # The solver finds the greedy optimum: one incircle disk (r = 1/2)
        # plus a corner disk — coverage ≈ 0.81, far above a degenerate
        # solution and below the theoretical ceiling.
        assert 0.3 < rep["coverage"] <= 0.85

    def test_threaded_backend_full_pipeline(self):
        p = PackingProblem(3)
        g = p.build_graph()
        backend = ThreadedBackend(num_workers=2)
        solver = ADMMSolver(g, backend=backend, rho=3.0)
        solver.state = p.initial_state(g, rho=3.0, seed=5)
        result = solver.solve(
            max_iterations=800, stopping=MaxIterations(800), check_every=200, init="keep"
        )
        solver.close()
        centers, radii = p.extract(g, result.z)
        assert p.validate(centers, radii)["overlap_violation"] < 1e-2


class TestEndToEndMPC:
    def test_pipeline_matches_kkt(self):
        p = default_problem(8)
        g = p.build_graph()
        result = ADMMSolver(g, rho=10.0).solve(
            max_iterations=8000, stopping=MaxIterations(8000), check_every=500
        )
        states, inputs = p.extract(result.z)
        st_ex, in_ex, obj_ex = solve_mpc_exact(p)
        assert p.dynamics_violation(states, inputs) < 1e-4
        assert p.objective(states, inputs) == pytest.approx(obj_ex, rel=1e-3)

    def test_controller_stabilizes_pendulum(self):
        # Simulate the closed loop: the first input of each solve is applied.
        p = default_problem(25, q0=np.array([0.0, 0.0, 0.15, 0.0]))
        st_ex, in_ex, _ = solve_mpc_exact(p)
        # Exact MPC drives the angle toward 0 across the horizon.
        assert abs(st_ex[-1, 2]) < abs(p.q0[2])


class TestEndToEndSVM:
    def test_pipeline_close_to_qp(self):
        X, y = make_blobs(20, dim=2, seed=11)
        p = SVMProblem(X, y, lam=1.0)
        g = p.build_graph()
        result = ADMMSolver(g, backend=VectorizedBackend()).solve(
            max_iterations=4000, stopping=MaxIterations(4000), check_every=500
        )
        w, b, slacks = p.extract(result.z)
        _, _, obj_ref = solve_svm_reference(p)
        assert p.objective(w, b) <= obj_ref * 1.05 + 1e-6
        assert np.all(slacks >= -1e-6)


class TestEndToEndLasso:
    def test_pipeline_matches_fista(self):
        A, y, w_true = make_lasso_data(80, 25, sparsity=5, noise=0.0, seed=12)
        p = LassoProblem(A, y, lam=0.02, n_blocks=5)
        g = p.build_graph()
        result = ADMMSolver(g).solve(
            max_iterations=5000, eps_abs=1e-10, eps_rel=1e-9, check_every=50
        )
        w = result.variable(0)
        w_ref = solve_lasso_fista(A, y, 0.02)
        np.testing.assert_allclose(w, w_ref, atol=1e-4)
        # Support recovery on noiseless data with mild regularization.
        big_true = np.abs(w_true) > 0.5
        assert np.all(np.abs(w[big_true]) > 1e-3)


class TestBackendsAgreeOnApplications:
    @pytest.mark.parametrize("app", ["packing", "mpc", "svm"])
    def test_serial_vs_vectorized_on_real_graphs(self, app):
        from repro.backends.serial import SerialBackend
        from repro.core.state import ADMMState

        if app == "packing":
            g = PackingProblem(4).build_graph()
            rho = 3.0
        elif app == "mpc":
            g = default_problem(6).build_graph()
            rho = 2.0
        else:
            X, y = make_blobs(10, seed=1)
            g = SVMProblem(X, y).build_graph()
            rho = 1.0
        s1 = ADMMState(g, rho=rho).init_random(0.1, 0.9, seed=3)
        s2 = s1.copy()
        SerialBackend().run(g, s1, 5)
        VectorizedBackend().run(g, s2, 5)
        np.testing.assert_allclose(s1.z, s2.z, atol=1e-11)
        np.testing.assert_allclose(s1.u, s2.u, atol=1e-11)
