"""Tests for the ADMM variants: classic two-block, three-weight, async."""

import numpy as np
import pytest

from repro.backends.vectorized import ThreeWeightBackend, VectorizedBackend
from repro.core.async_admm import AsyncSweepPlan, run_iteration_async, solve_async
from repro.core.classic import classic_admm
from repro.core.solver import ADMMSolver
from repro.core.state import ADMMState
from repro.core.three_weight import run_iteration_twa
from repro.graph.builder import GraphBuilder
from repro.prox.standard import (
    ConsensusEqualProx,
    DiagQuadProx,
    FixedValueProx,
    L1Prox,
    ZeroProx,
)


class TestClassicADMM:
    def test_lasso_1d_soft_threshold(self):
        # min 0.5(x-3)^2 + |x| has solution x = 2 (soft threshold of 3).
        res = classic_admm(
            prox_f=lambda v, r: (r * v + 3.0) / (1.0 + r),
            prox_g=lambda v, r: np.sign(v) * np.maximum(np.abs(v) - 1.0 / r, 0),
            dim=1,
            rho=1.0,
            max_iterations=2000,
        )
        assert res.converged
        np.testing.assert_allclose(res.z, [2.0], atol=1e-5)

    def test_quadratic_consensus(self):
        # min 0.5||x-a||^2 + 0.5||x-b||^2 -> midpoint.
        a, b = np.array([1.0, 3.0]), np.array([3.0, -1.0])
        res = classic_admm(
            prox_f=lambda v, r: (r * v + a) / (1.0 + r),
            prox_g=lambda v, r: (r * v + b) / (1.0 + r),
            dim=2,
            max_iterations=2000,
        )
        np.testing.assert_allclose(res.z, (a + b) / 2, atol=1e-5)

    def test_residual_histories_monotone_tail(self):
        res = classic_admm(
            prox_f=lambda v, r: (r * v + 3.0) / (1.0 + r),
            prox_g=lambda v, r: v,
            dim=1,
            max_iterations=500,
        )
        assert res.primal_history[-1] <= res.primal_history[0] + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            classic_admm(lambda v, r: v, lambda v, r: v, dim=1, rho=0.0)
        with pytest.raises(ValueError):
            classic_admm(lambda v, r: v, lambda v, r: v, dim=1, max_iterations=-1)

    def test_agrees_with_factor_graph_engine(self):
        # Same problem both ways: f = 0.5||x - a||^2, g = lam|x|_1.
        a = np.array([3.0, -2.0])
        lam = 0.5
        res_classic = classic_admm(
            prox_f=lambda v, r: (r * v + a) / (1.0 + r),
            prox_g=lambda v, r: np.sign(v) * np.maximum(np.abs(v) - lam / r, 0),
            dim=2,
            max_iterations=3000,
            eps_abs=1e-10,
        )
        b = GraphBuilder()
        w = b.add_variable(2)
        b.add_factor(
            DiagQuadProx(dims=(2,)), [w], params={"q": np.ones(2), "c": -a}
        )
        b.add_factor(L1Prox(lam=lam), [w])
        res_fg = ADMMSolver(b.build()).solve(
            max_iterations=3000, eps_abs=1e-10, eps_rel=1e-9
        )
        np.testing.assert_allclose(res_fg.variable(0), res_classic.z, atol=1e-4)


class TestThreeWeight:
    def graph_with_pinned_var(self):
        b = GraphBuilder()
        w = b.add_variable(1)
        b.add_factor(FixedValueProx(), [w], params={"value": np.array([5.0])})
        b.add_factor(
            DiagQuadProx(dims=(1,)), [w], params={"q": [1.0], "c": [0.0]}
        )
        return b.build()

    def test_infinite_weight_pins_z_immediately(self):
        g = self.graph_with_pinned_var()
        s = ADMMState(g, rho=1.0).init_zeros()
        run_iteration_twa(g, s)
        # Certain message wins the average outright in one iteration.
        assert abs(s.z[0] - 5.0) < 1e-12

    def test_standard_weights_match_vanilla_admm(self, chain_graph):
        # All operators in chain_graph emit standard weights except Zero;
        # build a pure diag-quad/consensus graph instead.
        b = GraphBuilder()
        vs = b.add_variables(4, dim=1)
        dq = DiagQuadProx(dims=(1,))
        ce = ConsensusEqualProx(k=2, dim=1)
        for i, v in enumerate(vs):
            b.add_factor(dq, [v], params={"q": [1.0], "c": [-float(i)]})
        for i in range(3):
            b.add_factor(ce, [vs[i], vs[i + 1]])
        g = b.build()
        s_twa = ADMMState(g, rho=1.5).init_random(seed=3)
        s_std = s_twa.copy()
        from repro.core import updates

        for _ in range(15):
            run_iteration_twa(g, s_twa)
            updates.run_iteration(g, s_std)
        np.testing.assert_allclose(s_twa.z, s_std.z, atol=1e-12)

    def test_zero_weight_factor_excluded_from_average(self):
        b = GraphBuilder()
        w = b.add_variable(1)
        b.add_factor(ZeroProx(), [w])
        b.add_factor(DiagQuadProx(dims=(1,)), [w], params={"q": [1.0], "c": [-4.0]})
        g = b.build()
        s = ADMMState(g, rho=1.0).init_zeros()
        run_iteration_twa(g, s)
        # With weight 0 on the zero factor, z equals the quadratic's message
        # alone: prox of 0 -> 4/(1+1) = 2.
        assert abs(s.z[0] - 2.0) < 1e-12

    def test_all_zero_weights_fall_back_to_plain_mean(self):
        b = GraphBuilder()
        w = b.add_variable(1)
        b.add_factor(ZeroProx(), [w])
        b.add_factor(ZeroProx(), [w])
        g = b.build()
        s = ADMMState(g, rho=1.0).init_zeros()
        s.n[:] = [2.0, 6.0]
        from repro.core.three_weight import (
            x_update_with_weights,
            z_update_weighted,
        )

        x_update_with_weights(g, s)
        np.add(s.x, s.u, out=s.m)
        z_update_weighted(g, s)
        assert abs(s.z[0] - 4.0) < 1e-12

    def test_three_weight_backend_converges(self):
        g = self.graph_with_pinned_var()
        solver = ADMMSolver(g, backend=ThreeWeightBackend())
        result = solver.solve(max_iterations=200, check_every=10)
        np.testing.assert_allclose(result.variable(0), [5.0], atol=1e-6)

    def test_three_weight_backend_with_timers(self):
        from repro.utils.timing import KernelTimers

        g = self.graph_with_pinned_var()
        s = ADMMState(g).init_zeros()
        timers = KernelTimers()
        ThreeWeightBackend().run(g, s, 5, timers)
        assert timers["x"].calls == 5
        assert s.iteration == 5

    def test_dual_reset_on_certain_edges(self):
        g = self.graph_with_pinned_var()
        s = ADMMState(g, rho=1.0).init_random(seed=1)
        run_iteration_twa(g, s)
        # The FixedValue factor's edge (edge 0) must carry no dual memory.
        assert s.u[g.edge_slots(0)][0] == 0.0


class TestAsyncADMM:
    def test_full_fraction_matches_synchronous(self, chain_graph):
        g = chain_graph
        s_async = ADMMState(g, rho=1.2).init_random(seed=8)
        s_sync = s_async.copy()
        from repro.core import updates

        mask = np.ones(g.num_factors, dtype=bool)
        for _ in range(10):
            run_iteration_async(g, s_async, mask)
            updates.run_iteration(g, s_sync)
        np.testing.assert_allclose(s_async.z, s_sync.z, atol=1e-12)

    def test_partial_updates_converge(self):
        b = GraphBuilder()
        w = b.add_variable(1)
        dq = DiagQuadProx(dims=(1,))
        b.add_factor(dq, [w], params={"q": [1.0], "c": [0.0]})
        b.add_factor(dq, [w], params={"q": [1.0], "c": [-4.0]})
        g = b.build()
        s = ADMMState(g, rho=1.0).init_zeros()
        solve_async(g, s, iterations=3000, fraction=0.5, seed=2)
        assert abs(s.z[0] - 2.0) < 1e-2

    def test_mask_shape_validated(self, chain_graph):
        s = ADMMState(chain_graph)
        with pytest.raises(ValueError, match="factor_mask"):
            run_iteration_async(chain_graph, s, np.ones(3, dtype=bool))

    def test_plan_draw_guarantees_progress(self, chain_graph):
        plan = AsyncSweepPlan(chain_graph, fraction=1e-9, seed=0)
        for _ in range(20):
            assert plan.draw().any()

    def test_plan_fraction_validated(self, chain_graph):
        with pytest.raises(ValueError):
            AsyncSweepPlan(chain_graph, fraction=0.0)
        with pytest.raises(ValueError):
            AsyncSweepPlan(chain_graph, fraction=1.5)

    def test_untouched_factor_edges_keep_state(self, chain_graph):
        g = chain_graph
        s = ADMMState(g, rho=1.0).init_random(seed=4)
        mask = np.zeros(g.num_factors, dtype=bool)
        mask[0] = True
        x_before = s.x.copy()
        u_before = s.u.copy()
        run_iteration_async(g, s, mask)
        untouched = ~mask[g.edge_factor]
        slot_untouched = untouched[g.slot_edge]
        np.testing.assert_array_equal(s.x[slot_untouched], x_before[slot_untouched])
        np.testing.assert_array_equal(s.u[slot_untouched], u_before[slot_untouched])
