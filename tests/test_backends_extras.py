"""Tests for the validating and randomized backends."""

import numpy as np
import pytest

from repro.backends.randomized import RandomizedBackend
from repro.backends.serial import SerialBackend
from repro.backends.validating import InvariantViolation, ValidatingBackend
from repro.backends.vectorized import VectorizedBackend
from repro.core.solver import ADMMSolver
from repro.core.state import ADMMState
from repro.graph.builder import GraphBuilder
from repro.prox.base import ProxOperator
from repro.prox.standard import DiagQuadProx


class NaNProx(ProxOperator):
    """A deliberately broken operator (failure injection)."""

    name = "nan_injector"

    def prox_batch(self, n, rho, params):
        out = np.array(n, copy=True)
        out[0, 0] = np.nan
        return out


class EscapeProx(ProxOperator):
    """Returns values that break the n = z - u identity downstream? No —
    breaks nothing by itself; used to check the wrapper passes clean runs."""

    name = "escape"

    def prox_batch(self, n, rho, params):
        return np.array(n, copy=True)


class TestValidatingBackend:
    def test_clean_run_passes(self, chain_graph):
        backend = ValidatingBackend(VectorizedBackend())
        s = ADMMState(chain_graph).init_random(seed=1)
        backend.run(chain_graph, s, 5)
        assert s.iteration == 5

    def test_detects_nan_from_prox(self):
        b = GraphBuilder()
        w = b.add_variable(2)
        b.add_factor(NaNProx(), [w])
        g = b.build()
        backend = ValidatingBackend(VectorizedBackend())
        s = ADMMState(g).init_random(seed=2)
        with pytest.raises(InvariantViolation, match="non-finite"):
            backend.run(g, s, 1)

    def test_detects_corrupted_n_identity(self, chain_graph):
        backend = ValidatingBackend(VectorizedBackend())
        s = ADMMState(chain_graph).init_random(seed=3)
        backend.run(chain_graph, s, 1)
        s.n[0] += 1.0  # corrupt
        with pytest.raises(InvariantViolation, match="identity"):
            backend.validate(chain_graph, s)

    def test_detects_z_outside_message_hull(self, chain_graph):
        backend = ValidatingBackend(VectorizedBackend())
        s = ADMMState(chain_graph).init_random(seed=4)
        backend.run(chain_graph, s, 1)
        s.z[0] = 1e6
        with pytest.raises(InvariantViolation):
            backend.validate(chain_graph, s)

    def test_matches_inner_backend(self, chain_graph):
        s1 = ADMMState(chain_graph).init_random(seed=5)
        s2 = s1.copy()
        VectorizedBackend().run(chain_graph, s1, 4)
        ValidatingBackend(VectorizedBackend()).run(chain_graph, s2, 4)
        np.testing.assert_array_equal(s1.z, s2.z)

    def test_works_with_solver(self, chain_graph):
        solver = ADMMSolver(chain_graph, backend=ValidatingBackend(SerialBackend()))
        res = solver.solve(max_iterations=30, check_every=10)
        assert res.iterations == 30 or res.converged

    def test_name_includes_inner(self):
        assert "vectorized" in ValidatingBackend(VectorizedBackend()).name


class TestRandomizedBackend:
    def quad_graph(self):
        b = GraphBuilder()
        w = b.add_variable(1)
        dq = DiagQuadProx(dims=(1,))
        b.add_factor(dq, [w], params={"q": [1.0], "c": [0.0]})
        b.add_factor(dq, [w], params={"q": [1.0], "c": [-4.0]})
        return b.build()

    def test_full_fraction_equals_vectorized(self, chain_graph):
        s1 = ADMMState(chain_graph, rho=1.3).init_random(seed=6)
        s2 = s1.copy()
        VectorizedBackend().run(chain_graph, s1, 8)
        RandomizedBackend(fraction=1.0).run(chain_graph, s2, 8)
        np.testing.assert_allclose(s1.z, s2.z, atol=1e-12)

    def test_partial_fraction_converges_with_solver(self):
        g = self.quad_graph()
        solver = ADMMSolver(g, backend=RandomizedBackend(fraction=0.5, seed=1))
        res = solver.solve(max_iterations=4000, check_every=50)
        np.testing.assert_allclose(res.variable(0), [2.0], atol=1e-2)

    def test_deterministic_given_seed(self, chain_graph):
        def run(seed):
            s = ADMMState(chain_graph).init_random(seed=7)
            RandomizedBackend(fraction=0.4, seed=seed).run(chain_graph, s, 10)
            return s.z

        np.testing.assert_array_equal(run(3), run(3))
        assert not np.array_equal(run(3), run(4))

    def test_timers_accounted(self, chain_graph):
        from repro.utils.timing import KernelTimers

        s = ADMMState(chain_graph).init_random(seed=8)
        timers = KernelTimers()
        RandomizedBackend(fraction=0.7).run(chain_graph, s, 3, timers)
        assert timers["x"].calls == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomizedBackend(fraction=0.0)
        with pytest.raises(ValueError):
            RandomizedBackend(fraction=1.2)
