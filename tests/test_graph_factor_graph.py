"""Unit tests for the factor-graph data structure and its index maps."""

import numpy as np
import pytest

from repro.graph.analysis import is_bipartite_consistent
from repro.graph.builder import GraphBuilder
from repro.graph.factor_graph import (
    DegenerateGraphWarning,
    FactorGraph,
    FactorSpec,
)
from repro.prox.standard import ConsensusEqualProx, DiagQuadProx, ZeroProx


def _zero():
    return ZeroProx()


class TestConstruction:
    def test_figure1_counts(self, figure1_graph):
        g = figure1_graph
        assert g.num_vars == 5
        assert g.num_factors == 4
        assert g.num_edges == 3 + 3 + 2 + 1
        assert g.num_elements == 5 + 4 + 9

    def test_edge_creation_order_is_factor_major(self, figure1_graph):
        g = figure1_graph
        # Edges appear factor by factor, scope order preserved.
        assert list(g.edge_var) == [0, 1, 2, 0, 3, 4, 1, 4, 4]
        assert list(g.edge_factor) == [0, 0, 0, 1, 1, 1, 2, 2, 3]

    def test_flat_layout_uniform_dims(self, figure1_graph):
        g = figure1_graph
        assert g.edge_size == g.num_edges  # all dims 1
        assert g.z_size == g.num_vars
        assert list(g.flat_edge_to_z) == list(g.edge_var)

    def test_mixed_dims_layout(self, mixed_dims_graph):
        g = mixed_dims_graph
        # factor 0: var a (3); factor 1: c,d (2+1); factor 2: d,c,a (1+2+3)
        assert g.edge_size == 3 + 3 + 6
        assert g.z_size == 6
        assert list(np.diff(g.factor_slot_indptr)) == [3, 3, 6]

    def test_flat_edge_to_z_mixed(self, mixed_dims_graph):
        g = mixed_dims_graph
        # Variable layout: a -> z[0:3], c -> z[3:5], d -> z[5].
        expected = [0, 1, 2, 3, 4, 5, 5, 3, 4, 0, 1, 2]
        assert list(g.flat_edge_to_z) == expected

    def test_var_names_roundtrip(self):
        b = GraphBuilder()
        b.add_variable(1, name="alpha")
        b.add_variable(2, name="beta")
        b.add_factor(_zero(), [0])
        b.add_factor(_zero(), [1])
        g = b.build()
        assert g.var_names == ("alpha", "beta")

    def test_empty_graph(self):
        g = FactorGraph(var_dims=[], factors=[])
        assert g.num_vars == 0
        assert g.num_edges == 0
        assert g.edge_size == 0
        assert is_bipartite_consistent(g)


class TestValidation:
    def test_rejects_zero_dim_variable(self):
        with pytest.raises(ValueError, match="dimension"):
            FactorGraph(var_dims=[0], factors=[])

    def test_rejects_out_of_range_scope(self):
        spec = FactorSpec(prox=_zero(), variables=(3,))
        with pytest.raises(ValueError, match="references variable 3"):
            FactorGraph(var_dims=[1, 1], factors=[spec])

    def test_rejects_duplicate_variable_in_scope(self):
        spec = FactorSpec(prox=_zero(), variables=(0, 0))
        with pytest.raises(ValueError, match="twice"):
            FactorGraph(var_dims=[1], factors=[spec])

    def test_rejects_empty_scope(self):
        spec = FactorSpec(prox=_zero(), variables=())
        with pytest.raises(ValueError, match="empty"):
            FactorGraph(var_dims=[1], factors=[spec])

    def test_rejects_mismatched_var_names(self):
        with pytest.raises(ValueError, match="var_names"):
            FactorGraph(var_dims=[1, 1], factors=[], var_names=["only_one"])

    def test_inconsistent_param_shapes_within_group(self):
        b = GraphBuilder()
        b.add_variables(2, dim=1)
        z = _zero()
        b.add_factor(z, [0], params={"p": np.zeros(2)})
        b.add_factor(z, [1], params={"p": np.zeros(3)})
        with pytest.raises(ValueError, match="inconsistent shapes"):
            b.build()


class TestIndexMaps:
    def test_scatter_matrix_row_sums_equal_degrees(self, figure1_graph):
        g = figure1_graph
        rows = np.asarray(g.scatter_matrix.sum(axis=1)).ravel()
        assert list(rows.astype(int)) == list(g.var_degree)

    def test_edges_of_var(self, figure1_graph):
        g = figure1_graph
        assert list(g.edges_of_var(4)) == [5, 7, 8]  # w5 in f2, f3, f4
        assert list(g.edges_of_var(0)) == [0, 3]
        assert list(g.edges_of_var(2)) == [2]

    def test_factor_slots_and_edges(self, mixed_dims_graph):
        g = mixed_dims_graph
        assert g.factor_slots(2) == slice(6, 12)
        assert g.factor_edges(2) == slice(3, 6)

    def test_var_slots(self, mixed_dims_graph):
        g = mixed_dims_graph
        assert g.var_slots(0) == slice(0, 3)
        assert g.var_slots(1) == slice(3, 5)
        assert g.var_slots(2) == slice(5, 6)

    def test_bipartite_consistency(self, figure1_graph, mixed_dims_graph, chain_graph):
        for g in (figure1_graph, mixed_dims_graph, chain_graph):
            assert is_bipartite_consistent(g)

    def test_degrees(self, figure1_graph):
        g = figure1_graph
        assert list(g.var_degree) == [2, 2, 1, 1, 3]
        assert list(g.factor_degree) == [3, 3, 2, 1]

    def test_isolated_variable_recorded(self):
        b = GraphBuilder()
        b.add_variables(3, dim=1)
        b.add_factor(_zero(), [0])
        with pytest.warns(DegenerateGraphWarning, match="2 of 3 variable"):
            g = b.build()
        assert list(g.isolated_vars) == [1, 2]
        assert "DEGENERATE" in g.summary()


class TestGroups:
    def test_groups_split_by_prox_identity(self, chain_graph):
        names = sorted(
            getattr(grp.prox, "name", "?") for grp in chain_graph.groups
        )
        assert names == ["consensus_equal", "diag_quad", "l1"]

    def test_group_sizes(self, chain_graph):
        by_name = {g.prox.name: g for g in chain_graph.groups}
        assert by_name["diag_quad"].size == 6
        assert by_name["consensus_equal"].size == 5
        assert by_name["l1"].size == 1

    def test_contiguous_fast_path_detected(self, chain_graph):
        assert all(g.contiguous for g in chain_graph.groups)

    def test_noncontiguous_group_detected(self):
        b = GraphBuilder()
        b.add_variables(4, dim=1)
        z = ZeroProx()
        dq = DiagQuadProx(dims=(1,))
        b.add_factor(z, [0])
        b.add_factor(dq, [1], params={"q": [1.0], "c": [0.0]})
        b.add_factor(z, [2])  # same group as factor 0, but factor 1 between
        with pytest.warns(DegenerateGraphWarning):  # var 3 unused, incidental
            g = b.build()
        zero_group = next(grp for grp in g.groups if grp.prox is z)
        assert not zero_group.contiguous

    def test_take_put_roundtrip_contiguous(self, chain_graph):
        g = chain_graph
        flat = np.arange(g.edge_size, dtype=float)
        for grp in g.groups:
            rows = grp.take_slots(flat)
            assert rows.shape == (grp.size, grp.slot_count)
            out = np.zeros_like(flat)
            grp.put_slots(out, rows)
            # Every slot this group owns must round-trip exactly.
            idx = grp.gather_slots.reshape(-1)
            np.testing.assert_array_equal(out[idx], flat[idx])

    def test_take_put_roundtrip_noncontiguous(self):
        b = GraphBuilder()
        b.add_variables(4, dim=2)
        z = ZeroProx()
        dq = DiagQuadProx(dims=(2,))
        b.add_factor(z, [0])
        b.add_factor(dq, [1], params={"q": np.ones(2), "c": np.zeros(2)})
        b.add_factor(z, [2])
        with pytest.warns(DegenerateGraphWarning):  # var 3 unused, incidental
            g = b.build()
        grp = next(gr for gr in g.groups if gr.prox is z)
        assert not grp.contiguous
        flat = np.arange(g.edge_size, dtype=float) * 10
        rows = grp.take_slots(flat)
        out = np.zeros_like(flat)
        grp.put_slots(out, rows)
        idx = grp.gather_slots.reshape(-1)
        np.testing.assert_array_equal(out[idx], flat[idx])

    def test_expand_rho(self, mixed_dims_graph):
        g = mixed_dims_graph
        grp = next(gr for gr in g.groups if gr.var_dims == (1, 2, 3))
        rho_rows = np.array([[1.0, 2.0, 3.0]])
        expanded = grp.expand_rho(rho_rows)
        assert list(expanded[0]) == [1.0, 2.0, 2.0, 3.0, 3.0, 3.0]

    def test_group_params_stacked(self, chain_graph):
        grp = next(g for g in chain_graph.groups if g.prox.name == "diag_quad")
        assert grp.params["q"].shape == (6, 2)
        assert grp.params["c"].shape == (6, 2)
        np.testing.assert_array_equal(grp.params["c"][:, 1], -np.ones(6))

    def test_group_order_deterministic(self, chain_graph):
        firsts = [int(g.factor_ids[0]) for g in chain_graph.groups]
        assert firsts == sorted(firsts)


class TestReadout:
    def test_read_solution_shapes(self, mixed_dims_graph):
        g = mixed_dims_graph
        z = np.arange(g.z_size, dtype=float)
        parts = g.read_solution(z)
        assert [p.size for p in parts] == [3, 2, 1]
        np.testing.assert_array_equal(parts[0], [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(parts[2], [5.0])

    def test_read_variable(self, mixed_dims_graph):
        g = mixed_dims_graph
        z = np.arange(g.z_size, dtype=float)
        np.testing.assert_array_equal(g.read_variable(z, 1), [3.0, 4.0])

    def test_summary_mentions_groups(self, chain_graph):
        text = chain_graph.summary()
        assert "diag_quad" in text
        assert "|E|=17" in text
