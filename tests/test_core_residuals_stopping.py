"""Unit tests for residuals, stopping criteria, and penalty schedules."""

import numpy as np
import pytest

from repro.core import updates
from repro.core.parameters import (
    ConstantPenalty,
    ResidualBalancing,
    apply_rho_scale,
)
from repro.core.residuals import (
    Residuals,
    compute_residuals,
    consensus_violation,
    objective_value,
)
from repro.core.state import ADMMState
from repro.core.stopping import (
    AnyOf,
    MaxIterations,
    ResidualTolerance,
    StallDetection,
)


def make_residuals(primal, dual, it=1, eps_p=1e-3, eps_d=1e-3):
    return Residuals(
        primal=primal, dual=dual, eps_primal=eps_p, eps_dual=eps_d, iteration=it
    )


class TestResiduals:
    def test_zero_at_consensus(self, chain_graph):
        g = chain_graph
        s = ADMMState(g)
        z = np.linspace(0.0, 1.0, g.z_size)
        s.init_from_z(z)
        updates.m_update(g, s)
        r = compute_residuals(g, s, z_prev=z.copy())
        assert r.primal == 0.0
        assert r.dual == 0.0
        assert r.converged

    def test_primal_measures_consensus_gap(self, figure1_graph):
        g = figure1_graph
        s = ADMMState(g)
        s.x[:] = 1.0
        s.z[:] = 0.0
        r = compute_residuals(g, s, z_prev=s.z.copy())
        assert abs(r.primal - np.sqrt(g.edge_size)) < 1e-12

    def test_dual_measures_z_change(self, figure1_graph):
        g = figure1_graph
        s = ADMMState(g, rho=2.0)
        s.z[:] = 1.0
        z_prev = np.zeros(g.z_size)
        s.x[:] = s.z[g.flat_edge_to_z]
        r = compute_residuals(g, s, z_prev)
        assert abs(r.dual - 2.0 * np.sqrt(g.edge_size)) < 1e-12
        assert r.primal == 0.0

    def test_consensus_violation_max_norm(self, figure1_graph):
        g = figure1_graph
        s = ADMMState(g)
        s.x[:] = 0.0
        s.x[3] = 5.0
        s.z[:] = 0.0
        assert consensus_violation(g, s) == 5.0

    def test_objective_value_sums_factors(self, chain_graph):
        s = ADMMState(chain_graph)
        s.z[:] = 0.0
        v = objective_value(chain_graph, s)
        assert np.isfinite(v)

    def test_objective_inf_when_infeasible(self):
        from repro.graph.builder import GraphBuilder
        from repro.prox.standard import NonNegativeProx

        b = GraphBuilder()
        w = b.add_variable(1)
        b.add_factor(NonNegativeProx(), [w])
        g = b.build()
        s = ADMMState(g)
        s.z[:] = -1.0
        assert objective_value(g, s) == float("inf")


class TestStopping:
    def test_max_iterations(self):
        c = MaxIterations(10)
        assert not c.check(make_residuals(1, 1, it=9))
        assert c.check(make_residuals(1, 1, it=10))

    def test_max_iterations_validation(self):
        with pytest.raises(ValueError):
            MaxIterations(-1)

    def test_residual_tolerance(self):
        c = ResidualTolerance()
        assert c.check(make_residuals(1e-5, 1e-5))
        assert not c.check(make_residuals(1e-2, 1e-5))

    def test_stall_detection_fires_on_plateau(self):
        c = StallDetection(patience=3, rel_improvement=0.01)
        r = make_residuals(1.0, 1.0)
        assert not c.check(r)  # establishes best
        fired = [c.check(make_residuals(1.0, 1.0, it=i)) for i in range(2, 6)]
        assert any(fired)

    def test_stall_detection_resets_on_progress(self):
        c = StallDetection(patience=3)
        c.check(make_residuals(1.0, 1.0))
        c.check(make_residuals(1.0, 1.0))
        assert not c.check(make_residuals(0.5, 1.0))  # improvement
        assert not c.check(make_residuals(0.5, 1.0))

    def test_any_of(self):
        c = AnyOf(MaxIterations(5), ResidualTolerance())
        assert c.check(make_residuals(1e-9, 1e-9, it=1))
        assert c.check(make_residuals(1.0, 1.0, it=5))
        assert not c.check(make_residuals(1.0, 1.0, it=1))

    def test_any_of_requires_criteria(self):
        with pytest.raises(ValueError):
            AnyOf()

    def test_reset_clears_stall_state(self):
        c = StallDetection(patience=1)
        c.check(make_residuals(1.0, 1.0))
        assert c.check(make_residuals(1.0, 1.0))
        c.reset()
        assert not c.check(make_residuals(1.0, 1.0))


class TestPenaltySchedules:
    def test_constant_never_scales(self, chain_graph):
        s = ADMMState(chain_graph)
        sched = ConstantPenalty()
        assert sched.rho_scale(s, make_residuals(100.0, 1e-9)) == 1.0

    def test_residual_balancing_increases_rho(self, chain_graph):
        s = ADMMState(chain_graph)
        sched = ResidualBalancing(mu=10.0, tau=2.0)
        assert sched.rho_scale(s, make_residuals(100.0, 1.0)) == 2.0

    def test_residual_balancing_decreases_rho(self, chain_graph):
        s = ADMMState(chain_graph)
        sched = ResidualBalancing(mu=10.0, tau=2.0)
        assert sched.rho_scale(s, make_residuals(1.0, 100.0)) == 0.5

    def test_residual_balancing_in_band(self, chain_graph):
        s = ADMMState(chain_graph)
        sched = ResidualBalancing(mu=10.0, tau=2.0)
        assert sched.rho_scale(s, make_residuals(2.0, 1.0)) == 1.0

    def test_max_updates_cap(self, chain_graph):
        s = ADMMState(chain_graph)
        sched = ResidualBalancing(mu=1.5, tau=2.0, max_updates=2)
        r = make_residuals(100.0, 1.0)
        assert sched.rho_scale(s, r) == 2.0
        assert sched.rho_scale(s, r) == 2.0
        assert sched.rho_scale(s, r) == 1.0  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            ResidualBalancing(tau=1.0)
        with pytest.raises(ValueError):
            ResidualBalancing(max_updates=-1)

    def test_apply_rho_scale_rescales_u(self, chain_graph):
        s = ADMMState(chain_graph, rho=1.0)
        s.u[:] = 4.0
        apply_rho_scale(s, 2.0)
        assert np.all(s.rho == 2.0)
        assert np.all(s.u == 2.0)

    def test_apply_rho_scale_noop(self, chain_graph):
        s = ADMMState(chain_graph, rho=1.0)
        s.u[:] = 4.0
        apply_rho_scale(s, 1.0)
        assert np.all(s.u == 4.0)

    def test_apply_rho_scale_invalid(self, chain_graph):
        s = ADMMState(chain_graph)
        with pytest.raises(ValueError):
            apply_rho_scale(s, -1.0)
