"""Unit tests for the standard proximal-operator library.

Each operator is checked against its closed form and, where cheap, against a
brute-force numerical minimization of ``h(s) + ρ/2||s − n||²``.
"""

import numpy as np
import pytest
import scipy.optimize as sopt

from repro.prox.standard import (
    AffineConstraintProx,
    BoxProx,
    ConsensusEqualProx,
    DiagQuadProx,
    FixedValueProx,
    HalfspaceProx,
    L1Prox,
    L2BallProx,
    LinearProx,
    NonNegativeProx,
    QuadraticProx,
    ZeroProx,
)

RNG = np.random.default_rng(42)


def brute_force_prox(objective, n, rho, x0=None):
    """Numerically minimize h(s) + rho/2 ||s-n||^2 (smooth h only)."""
    def f(s):
        return objective(s) + 0.5 * rho * np.sum((s - n) ** 2)

    res = sopt.minimize(f, n if x0 is None else x0, method="Nelder-Mead",
                        options={"xatol": 1e-10, "fatol": 1e-12, "maxiter": 20000})
    return res.x


class TestZeroAndLinear:
    def test_zero_is_identity(self):
        op = ZeroProx()
        n = RNG.normal(size=(4, 3))
        out = op.prox_batch(n, np.ones((4, 1)), {})
        np.testing.assert_array_equal(out, n)
        assert out is not n

    def test_zero_weights_are_zero(self):
        op = ZeroProx()
        w = op.outgoing_weights(np.zeros((2, 1)), np.zeros((2, 1)), np.ones((2, 1)), {})
        assert np.all(w == 0)

    def test_linear_shift(self):
        op = LinearProx(dims=(2,))
        n = np.array([[1.0, 2.0]])
        out = op.prox_batch(n, np.array([[2.0]]), {"c": np.array([[4.0, -2.0]])})
        np.testing.assert_allclose(out, [[1.0 - 2.0, 2.0 + 1.0]])

    def test_linear_matches_brute_force(self):
        c = np.array([0.7, -1.3])
        op = LinearProx(dims=(2,))
        n = np.array([0.2, 0.9])
        got = op.prox(n, np.array([1.5]), {"c": c})
        ref = brute_force_prox(lambda s: c @ s, n, 1.5)
        np.testing.assert_allclose(got, ref, atol=1e-5)


class TestDiagQuad:
    def test_closed_form(self):
        op = DiagQuadProx(dims=(2,))
        n = np.array([[4.0, -4.0]])
        out = op.prox_batch(
            n, np.array([[2.0]]), {"q": np.array([[2.0, 2.0]]), "c": np.array([[0.0, 0.0]])}
        )
        np.testing.assert_allclose(out, [[2.0, -2.0]])

    def test_matches_brute_force(self):
        q = np.array([1.0, 3.0])
        c = np.array([-0.5, 0.2])
        op = DiagQuadProx(dims=(2,))
        n = np.array([1.1, -0.3])
        got = op.prox(n, np.array([2.0]), {"q": q, "c": c})
        ref = brute_force_prox(lambda s: 0.5 * q @ (s * s) + c @ s, n, 2.0)
        np.testing.assert_allclose(got, ref, atol=1e-5)

    def test_negative_curvature_guard(self):
        op = DiagQuadProx(dims=(1,))
        with pytest.raises(ValueError, match="q \\+ rho"):
            op.prox_batch(
                np.array([[1.0]]), np.array([[1.0]]), {"q": np.array([[-2.0]])}
            )

    def test_evaluate(self):
        op = DiagQuadProx(dims=(2,))
        v = op.evaluate(np.array([1.0, 2.0]), {"q": np.array([2.0, 2.0])})
        assert abs(v - 5.0) < 1e-12


class TestQuadratic:
    def test_matches_diag_case(self):
        P = np.diag([1.0, 3.0])
        op = QuadraticProx(dims=(2,))
        dop = DiagQuadProx(dims=(2,))
        n = np.array([[0.4, -2.0]])
        rho = np.array([[1.7]])
        full = op.prox_batch(n, rho, {"P": P[None], "c": np.zeros((1, 2))})
        diag = dop.prox_batch(
            n, rho, {"q": np.array([[1.0, 3.0]]), "c": np.zeros((1, 2))}
        )
        np.testing.assert_allclose(full, diag, atol=1e-12)

    def test_requires_uniform_rho(self):
        op = QuadraticProx(dims=(1, 1))
        with pytest.raises(ValueError, match="equal rho"):
            op.prox_batch(
                np.zeros((1, 2)), np.array([[1.0, 2.0]]), {"P": np.eye(2)[None]}
            )

    def test_matches_brute_force(self):
        A = RNG.normal(size=(2, 2))
        P = A @ A.T + np.eye(2)
        op = QuadraticProx(dims=(2,))
        n = np.array([0.3, -0.8])
        got = op.prox(n, np.array([1.0]), {"P": P})
        ref = brute_force_prox(lambda s: 0.5 * s @ P @ s, n, 1.0)
        np.testing.assert_allclose(got, ref, atol=1e-4)


class TestProjections:
    def test_box_clips(self):
        op = BoxProx()
        out = op.prox_batch(
            np.array([[-2.0, 0.5, 9.0]]),
            np.ones((1, 1)),
            {"lo": np.array([[0.0, 0.0, 0.0]]), "hi": np.array([[1.0, 1.0, 1.0]])},
        )
        np.testing.assert_array_equal(out, [[0.0, 0.5, 1.0]])

    def test_box_evaluate_infeasible(self):
        op = BoxProx()
        v = op.evaluate(np.array([2.0]), {"lo": np.array([0.0]), "hi": np.array([1.0])})
        assert v == float("inf")

    def test_nonnegative(self):
        op = NonNegativeProx()
        out = op.prox_batch(np.array([[-1.0, 2.0]]), np.ones((1, 1)), {})
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_l2_ball_inside_unchanged(self):
        op = L2BallProx(radius=2.0)
        n = np.array([[1.0, 0.0]])
        np.testing.assert_allclose(op.prox_batch(n, np.ones((1, 1)), {}), n)

    def test_l2_ball_projects_radially(self):
        op = L2BallProx(radius=1.0)
        out = op.prox_batch(np.array([[3.0, 4.0]]), np.ones((1, 1)), {})
        np.testing.assert_allclose(out, [[0.6, 0.8]], atol=1e-12)

    def test_halfspace_feasible_unchanged(self):
        op = HalfspaceProx(dims=(2,))
        n = np.array([[0.0, 0.0]])
        out = op.prox_batch(
            n, np.ones((1, 1)), {"g": np.array([[1.0, 0.0]]), "h": np.array([1.0])}
        )
        np.testing.assert_allclose(out, n)

    def test_halfspace_projects_onto_boundary(self):
        op = HalfspaceProx(dims=(2,))
        out = op.prox_batch(
            np.array([[2.0, 0.0]]),
            np.ones((1, 1)),
            {"g": np.array([[1.0, 0.0]]), "h": np.array([1.0])},
        )
        np.testing.assert_allclose(out, [[1.0, 0.0]], atol=1e-12)

    def test_halfspace_weighted(self):
        # Heavier rho on the first variable -> correction shifts to second.
        op = HalfspaceProx(dims=(1, 1))
        out = op.prox_batch(
            np.array([[1.0, 1.0]]),
            np.array([[10.0, 1.0]]),
            {"g": np.array([[1.0, 1.0]]), "h": np.array([0.0])},
        )
        # Constraint active: x1 + x2 = 0; first barely moves.
        assert abs(out[0].sum()) < 1e-9
        assert abs(out[0, 0] - 1.0) < abs(out[0, 1] - 1.0)


class TestL1:
    def test_soft_threshold(self):
        op = L1Prox(lam=1.0)
        out = op.prox_batch(np.array([[3.0, -0.5, -2.0]]), np.ones((1, 1)), {})
        np.testing.assert_allclose(out, [[2.0, 0.0, -1.0]])

    def test_lam_param_overrides(self):
        op = L1Prox(lam=1.0)
        out = op.prox_batch(
            np.array([[3.0]]), np.ones((1, 1)), {"lam": np.array([2.0])}
        )
        np.testing.assert_allclose(out, [[1.0]])

    def test_rho_scales_threshold(self):
        op = L1Prox(lam=1.0)
        out = op.prox_batch(np.array([[3.0]]), np.array([[2.0]]), {})
        np.testing.assert_allclose(out, [[2.5]])

    def test_invalid_lam(self):
        with pytest.raises(ValueError):
            L1Prox(lam=0.0)


class TestAffineConstraint:
    def test_projection_onto_hyperplane(self):
        A = np.array([[1.0, 1.0]])
        op = AffineConstraintProx(A, dims=(2,))
        out = op.prox_batch(
            np.array([[2.0, 0.0]]), np.ones((1, 1)), {"c": np.array([[0.0]])}
        )
        np.testing.assert_allclose(out, [[1.0, -1.0]], atol=1e-12)

    def test_constraint_satisfied_after_prox(self):
        A = RNG.normal(size=(2, 5))
        op = AffineConstraintProx(A, dims=(5,))
        n = RNG.normal(size=(3, 5))
        c = RNG.normal(size=(3, 2))
        out = op.prox_batch(n, np.ones((3, 1)), {"c": c})
        np.testing.assert_allclose(
            np.einsum("ml,bl->bm", A, out), c, atol=1e-9
        )

    def test_weighted_projection_constraint_satisfied(self):
        A = RNG.normal(size=(2, 4))
        op = AffineConstraintProx(A, dims=(2, 2))
        n = RNG.normal(size=(3, 4))
        rho = RNG.uniform(0.5, 4.0, size=(3, 2))
        out = op.prox_batch(n, rho, {})
        np.testing.assert_allclose(
            np.einsum("ml,bl->bm", A, out), np.zeros((3, 2)), atol=1e-9
        )

    def test_weighted_matches_uniform_when_equal(self):
        A = RNG.normal(size=(1, 3))
        op = AffineConstraintProx(A, dims=(1, 1, 1))
        n = RNG.normal(size=(2, 3))
        uni = op.prox_batch(n, np.full((2, 3), 2.0), {})
        # Force the non-uniform branch with epsilon difference.
        rho = np.full((2, 3), 2.0)
        rho[0, 0] += 1e-13
        wgt = op.prox_batch(n, rho, {})
        np.testing.assert_allclose(uni, wgt, atol=1e-8)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="columns"):
            AffineConstraintProx(np.eye(2), dims=(3,))

    def test_idempotent(self):
        A = RNG.normal(size=(2, 4))
        op = AffineConstraintProx(A, dims=(4,))
        n = RNG.normal(size=(1, 4))
        once = op.prox_batch(n, np.ones((1, 1)), {})
        twice = op.prox_batch(once, np.ones((1, 1)), {})
        np.testing.assert_allclose(once, twice, atol=1e-10)


class TestConsensusEqual:
    def test_weighted_mean(self):
        op = ConsensusEqualProx(k=2, dim=1)
        out = op.prox(
            np.array([0.0, 3.0]), np.array([1.0, 2.0]), {}
        )
        np.testing.assert_allclose(out, [2.0, 2.0])

    def test_three_way(self):
        op = ConsensusEqualProx(k=3, dim=2)
        n = np.array([[1.0, 0.0, 3.0, 0.0, 5.0, 0.0]])
        out = op.prox_batch(n, np.ones((1, 3)), {})
        np.testing.assert_allclose(out[0, 0::2], [3.0, 3.0, 3.0])

    def test_needs_two_variables(self):
        with pytest.raises(ValueError, match="k >= 2"):
            ConsensusEqualProx(k=1, dim=1)

    def test_evaluate(self):
        op = ConsensusEqualProx(k=2, dim=1)
        assert op.evaluate(np.array([1.0, 1.0]), {}) == 0.0
        assert op.evaluate(np.array([1.0, 2.0]), {}) == float("inf")


class TestFixedValue:
    def test_pins_value(self):
        op = FixedValueProx()
        out = op.prox_batch(
            np.array([[9.0, 9.0]]), np.ones((1, 1)), {"value": np.array([[1.0, 2.0]])}
        )
        np.testing.assert_array_equal(out, [[1.0, 2.0]])

    def test_infinite_weights(self):
        op = FixedValueProx()
        w = op.outgoing_weights(
            np.zeros((2, 1)), np.zeros((2, 1)), np.ones((2, 1)), {}
        )
        assert np.all(np.isinf(w))
