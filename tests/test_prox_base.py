"""Unit tests for the ProxOperator protocol and registry."""

import numpy as np
import pytest

from repro.prox.base import ProxOperator, expand_rho, slot_offsets
from repro.prox.registry import (
    get_prox_class,
    iter_registered,
    make_prox,
    register_prox,
    registered_prox_names,
)
from repro.prox.standard import DiagQuadProx, ZeroProx


class TestProtocol:
    def test_must_override_something(self):
        class Bad(ProxOperator):
            pass

        with pytest.raises(TypeError, match="must override"):
            Bad()

    def test_scalar_delegates_to_batch(self):
        class BatchOnly(ProxOperator):
            def prox_batch(self, n, rho, params):
                return n * 2.0

        op = BatchOnly()
        out = op.prox(np.array([1.0, 2.0]), np.array([1.0]), {})
        np.testing.assert_array_equal(out, [2.0, 4.0])

    def test_batch_delegates_to_scalar(self):
        class ScalarOnly(ProxOperator):
            def prox(self, n, rho, params):
                return n + params["shift"]

        op = ScalarOnly()
        out = op.prox_batch(
            np.array([[1.0], [2.0]]),
            np.ones((2, 1)),
            {"shift": np.array([[10.0], [20.0]])},
        )
        np.testing.assert_array_equal(out, [[11.0], [22.0]])

    def test_default_name_is_class_name(self):
        class MyOp(ProxOperator):
            def prox_batch(self, n, rho, params):
                return n

        assert MyOp().name == "MyOp"

    def test_validate_dims(self):
        op = DiagQuadProx(dims=(2,))
        op.validate_dims((2,))
        with pytest.raises(ValueError, match="expects variable dims"):
            op.validate_dims((3,))

    def test_default_outgoing_weights_are_rho(self):
        op = ZeroProx()
        rho = np.array([[1.0, 2.0]])
        # ZeroProx overrides to zeros; use a DiagQuad for the default.
        dq = DiagQuadProx(dims=(1, 1))
        w = dq.outgoing_weights(np.zeros((1, 2)), np.zeros((1, 2)), rho, {})
        np.testing.assert_array_equal(w, rho)
        assert w is not rho  # must be a copy

    def test_default_evaluate_is_nan(self):
        class BatchOnly(ProxOperator):
            def prox_batch(self, n, rho, params):
                return n

        v = BatchOnly().evaluate(np.zeros(2), {})
        assert v != v


class TestHelpers:
    def test_expand_rho(self):
        rho = np.array([[1.0, 2.0, 3.0]])
        out = expand_rho(rho, (2, 1, 3))
        np.testing.assert_array_equal(out, [[1, 1, 2, 3, 3, 3]])

    def test_expand_rho_1d(self):
        out = expand_rho(np.array([5.0, 7.0]), (1, 2))
        np.testing.assert_array_equal(out, [5.0, 7.0, 7.0])

    def test_slot_offsets(self):
        np.testing.assert_array_equal(slot_offsets((2, 1, 3)), [0, 2, 3, 6])


class TestRegistry:
    def test_known_names_present(self):
        names = registered_prox_names()
        for expected in (
            "zero",
            "l1",
            "diag_quad",
            "consensus_equal",
            "packing_pair",
            "packing_wall",
            "packing_radius",
            "mpc_cost",
            "svm_margin",
            "svm_norm",
            "svm_slack",
            "data_fidelity",
        ):
            assert expected in names

    def test_get_and_make(self):
        cls = get_prox_class("l1")
        op = make_prox("l1", lam=0.5)
        assert isinstance(op, cls)
        assert op.lam == 0.5

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown proximal operator"):
            get_prox_class("does_not_exist")

    def test_duplicate_registration_rejected(self):
        class Dup1(ProxOperator):
            name = "dup_test_op"

            def prox_batch(self, n, rho, params):
                return n

        register_prox(Dup1)

        class Dup2(ProxOperator):
            name = "dup_test_op"

            def prox_batch(self, n, rho, params):
                return n

        with pytest.raises(ValueError, match="already registered"):
            register_prox(Dup2)

    def test_iter_registered_sorted(self):
        names = [n for n, _ in iter_registered()]
        assert names == sorted(names)
