"""Unit + integration tests for the ADMMSolver driver."""

import numpy as np
import pytest

from repro.backends.serial import SerialBackend
from repro.backends.vectorized import VectorizedBackend
from repro.core.parameters import ResidualBalancing
from repro.core.solver import ADMMSolver
from repro.core.stopping import MaxIterations
from repro.graph.builder import GraphBuilder
from repro.prox.standard import ConsensusEqualProx, DiagQuadProx, FixedValueProx


def single_quad_graph(target=(2.0, -1.0)):
    b = GraphBuilder()
    w = b.add_variable(2)
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [w],
        params={"q": np.ones(2), "c": -np.asarray(target, dtype=float)},
    )
    return b.build()


class TestBasicSolve:
    def test_single_factor_quadratic(self):
        g = single_quad_graph()
        result = ADMMSolver(g).solve(max_iterations=300)
        np.testing.assert_allclose(result.variable(0), [2.0, -1.0], atol=1e-5)
        assert result.converged

    def test_two_anchors_average(self):
        # Two quadratics pulling one variable to 0 and 4 -> optimum at 2.
        b = GraphBuilder()
        w = b.add_variable(1)
        dq = DiagQuadProx(dims=(1,))
        b.add_factor(dq, [w], params={"q": [1.0], "c": [0.0]})
        b.add_factor(dq, [w], params={"q": [1.0], "c": [-4.0]})
        result = ADMMSolver(b.build()).solve(max_iterations=500)
        np.testing.assert_allclose(result.variable(0), [2.0], atol=1e-5)

    def test_consensus_chain_converges(self, chain_graph):
        result = ADMMSolver(chain_graph).solve(
            max_iterations=8000, eps_abs=1e-10, eps_rel=1e-9, check_every=20
        )
        # All six variables equal (consensus) at the joint optimum.
        sol = np.stack(result.solution)
        assert np.max(np.abs(sol - sol[0])) < 1e-4

    def test_history_recorded(self):
        g = single_quad_graph()
        result = ADMMSolver(g).solve(max_iterations=100, check_every=10)
        assert len(result.history) >= 1
        assert result.history.iterations[-1] == result.iterations

    def test_record_objective(self):
        g = single_quad_graph()
        solver = ADMMSolver(g, record_objective=True)
        result = solver.solve(max_iterations=100, check_every=10)
        assert len(result.history.objective) == len(result.history)

    def test_fixed_iterations_mode(self):
        g = single_quad_graph()
        result = ADMMSolver(g).solve(
            max_iterations=37, stopping=MaxIterations(37), check_every=10
        )
        assert result.iterations == 37

    def test_callback_invoked(self):
        g = single_quad_graph()
        calls = []
        ADMMSolver(g).solve(
            max_iterations=50,
            check_every=10,
            callback=lambda s, r: calls.append(r.iteration),
        )
        assert calls and calls == sorted(calls)

    def test_zero_iterations(self):
        # max_iterations=0 contract: no sweeps, residuals of the initial
        # iterate computed once, converged False, one history entry.
        g = single_quad_graph()
        result = ADMMSolver(g).solve(max_iterations=0)
        assert result.iterations == 0
        assert not result.converged
        assert result.residuals is not None
        assert result.residuals.iteration == 0
        assert result.residuals.dual == 0.0  # no z-step has happened
        assert len(result.history) == 1

    def test_zero_iterations_after_warm_start(self):
        # The residual snapshot reflects the warm-started iterate, and the
        # iterate itself is untouched.
        g = single_quad_graph(target=(1.0, 1.0))
        solver = ADMMSolver(g)
        first = solver.solve(max_iterations=300)
        solver.warm_start(first.z)
        probe = solver.solve(max_iterations=0, init="keep")
        np.testing.assert_array_equal(probe.z, first.z)
        assert probe.residuals is not None
        # Warm start broadcasts z along edges, so consensus is exact.
        assert probe.residuals.primal == pytest.approx(0.0, abs=1e-12)

    def test_zero_iterations_records_objective(self):
        g = single_quad_graph()
        solver = ADMMSolver(g, record_objective=True)
        result = solver.solve(max_iterations=0)
        assert len(result.history.objective) == 1


class TestSolverConfig:
    def test_invalid_args(self):
        g = single_quad_graph()
        s = ADMMSolver(g)
        with pytest.raises(ValueError):
            s.solve(max_iterations=-1)
        with pytest.raises(ValueError):
            s.solve(check_every=0)
        with pytest.raises(ValueError):
            s.iterate(-1)
        with pytest.raises(ValueError, match="unknown init"):
            s.initialize("bogus")

    def test_signature_validation_at_construction(self):
        b = GraphBuilder()
        w = b.add_variable(3)  # wrong dim for a (2,)-signature operator
        b.add_factor(DiagQuadProx(dims=(2,)), [w], params={"q": np.ones(2)})
        with pytest.raises(ValueError, match="factor 0"):
            ADMMSolver(b.build())

    def test_backend_choice(self):
        g = single_quad_graph()
        r1 = ADMMSolver(g, backend=SerialBackend()).solve(max_iterations=100)
        r2 = ADMMSolver(g, backend=VectorizedBackend()).solve(max_iterations=100)
        np.testing.assert_allclose(r1.z, r2.z, atol=1e-12)

    def test_context_manager(self):
        g = single_quad_graph()
        with ADMMSolver(g) as solver:
            solver.solve(max_iterations=10)

    def test_iterate_advances_counter(self):
        g = single_quad_graph()
        s = ADMMSolver(g)
        s.iterate(5)
        assert s.state.iteration == 5


class TestWarmStart:
    def test_warm_start_is_fixed_point_at_optimum(self):
        g = single_quad_graph(target=(1.0, 1.0))
        solver = ADMMSolver(g)
        first = solver.solve(max_iterations=500)
        solver.warm_start(first.z)
        second = solver.solve(max_iterations=50, init="keep", check_every=5)
        np.testing.assert_allclose(second.z, first.z, atol=1e-6)
        assert second.iterations <= 50

    def test_warm_start_speeds_convergence(self):
        # Chain consensus: cold vs warm iteration counts.
        b = GraphBuilder()
        vs = b.add_variables(8, dim=1)
        dq = DiagQuadProx(dims=(1,))
        ce = ConsensusEqualProx(k=2, dim=1)
        for i, v in enumerate(vs):
            b.add_factor(dq, [v], params={"q": [1.0], "c": [-float(i)]})
        for i in range(7):
            b.add_factor(ce, [vs[i], vs[i + 1]])
        g = b.build()
        solver = ADMMSolver(g)
        cold = solver.solve(max_iterations=5000, eps_abs=1e-8, check_every=10)
        solver.warm_start(cold.z)
        warm = solver.solve(
            max_iterations=5000, eps_abs=1e-8, init="keep", check_every=10
        )
        # Warm starts reset the dual memory, so they can't be *slower* than
        # cold but need not be strictly faster on short chains.
        assert warm.iterations <= cold.iterations


class TestAdaptiveRho:
    def test_residual_balancing_converges(self, chain_graph):
        solver = ADMMSolver(chain_graph, rho=0.05, schedule=ResidualBalancing())
        result = solver.solve(
            max_iterations=6000, eps_abs=1e-8, eps_rel=1e-7, check_every=25
        )
        sol = np.stack(result.solution)
        assert np.max(np.abs(sol - sol[0])) < 1e-2

    def test_rho_actually_changes(self):
        g = single_quad_graph()
        sched = ResidualBalancing(mu=1.0001, tau=2.0)
        solver = ADMMSolver(g, rho=100.0, schedule=sched)
        result = solver.solve(max_iterations=200, check_every=5)
        assert len(set(result.history.rho)) > 1


class TestFixedValueFactor:
    def test_pinned_variable_dominates(self):
        b = GraphBuilder()
        w = b.add_variable(2)
        b.add_factor(FixedValueProx(), [w], params={"value": np.array([3.0, -3.0])})
        b.add_factor(
            DiagQuadProx(dims=(2,)), [w], params={"q": np.ones(2) * 0.1, "c": np.zeros(2)}
        )
        result = ADMMSolver(b.build()).solve(max_iterations=2000, check_every=20)
        np.testing.assert_allclose(result.variable(0), [3.0, -3.0], atol=1e-2)
