"""Tests for the future-work extensions: multi-GPU model, fp32 what-if."""

import numpy as np
import pytest

from repro.gpusim.device import OPTERON_6300, TESLA_K40
from repro.gpusim.kernel import KernelWorkload
from repro.gpusim.multidevice import (
    Interconnect,
    scaling_curve,
    shard_workload,
    simulate_multi_gpu,
)
from repro.gpusim.precision import (
    K40_FP32,
    TITANX_FP32,
    PrecisionProfile,
    with_precision,
)
from repro.gpusim.synthetic import packing_workloads
from repro.gpusim.workloads import simulate_admm_gpu


class TestSharding:
    def test_shards_cover_all_items(self):
        wl = KernelWorkload("t", np.arange(100.0), np.ones(100))
        shards = shard_workload(wl, 3)
        assert sum(s.n_items for s in shards) == 100
        recon = np.concatenate([s.cycles for s in shards])
        np.testing.assert_array_equal(recon, wl.cycles)

    def test_single_device_is_whole(self):
        wl = KernelWorkload("t", np.ones(10), np.ones(10))
        shards = shard_workload(wl, 1)
        assert len(shards) == 1 and shards[0].n_items == 10

    def test_validation(self):
        wl = KernelWorkload("t", np.ones(4), np.ones(4))
        with pytest.raises(ValueError):
            shard_workload(wl, 0)


class TestInterconnect:
    def test_latency_floor(self):
        link = Interconnect(bandwidth_gbs=10.0, latency_us=5.0)
        assert link.transfer_s(0.0) == 0.0
        assert link.transfer_s(1.0) >= 5e-6

    def test_bandwidth_term(self):
        link = Interconnect(bandwidth_gbs=10.0, latency_us=0.0)
        assert link.transfer_s(10e9) == pytest.approx(1.0)


class TestMultiGPU:
    def test_two_gpus_beat_one_on_big_graphs(self):
        wl, _ = packing_workloads(3000)
        r1 = simulate_multi_gpu(TESLA_K40, OPTERON_6300, wl, 1)
        r2 = simulate_multi_gpu(TESLA_K40, OPTERON_6300, wl, 2, cut_fraction=0.05)
        assert r2.iteration_s < r1.iteration_s
        assert r2.combined_speedup > r1.combined_speedup

    def test_communication_can_dominate_small_graphs(self):
        wl, _ = packing_workloads(20)
        r1 = simulate_multi_gpu(TESLA_K40, OPTERON_6300, wl, 1)
        r8 = simulate_multi_gpu(
            TESLA_K40, OPTERON_6300, wl, 8, cut_fraction=0.5
        )
        # Tiny problem: launch + link latency swamps the shard speedup.
        assert r8.iteration_s >= r1.iteration_s * 0.9

    def test_cut_fraction_monotone(self):
        wl, _ = packing_workloads(1000)
        lo = simulate_multi_gpu(TESLA_K40, OPTERON_6300, wl, 4, cut_fraction=0.01)
        hi = simulate_multi_gpu(TESLA_K40, OPTERON_6300, wl, 4, cut_fraction=0.5)
        assert hi.comm_s > lo.comm_s
        assert hi.iteration_s > lo.iteration_s

    def test_single_device_no_comm(self):
        wl, _ = packing_workloads(100)
        r = simulate_multi_gpu(TESLA_K40, OPTERON_6300, wl, 1)
        assert r.comm_s == 0.0

    def test_scaling_curve_shape(self):
        wl, _ = packing_workloads(2000)
        curve = scaling_curve(TESLA_K40, OPTERON_6300, wl)
        assert set(curve) == {1, 2, 4, 8}
        assert curve[2].combined_speedup > curve[1].combined_speedup

    def test_validation(self):
        wl, _ = packing_workloads(50)
        with pytest.raises(ValueError):
            simulate_multi_gpu(TESLA_K40, OPTERON_6300, wl, 2, cut_fraction=1.5)


class TestPrecision:
    def test_fp32_scales_cycles_and_bytes(self):
        wl, _ = packing_workloads(100)
        fp32 = with_precision(wl, K40_FP32)
        for k in wl:
            assert fp32[k].total_cycles == pytest.approx(
                wl[k].total_cycles / 3.0
            )
            assert fp32[k].total_bytes == pytest.approx(wl[k].total_bytes / 2.0)

    def test_fp32_speeds_up_gpu_iteration(self):
        wl, _ = packing_workloads(1000)
        fp64 = simulate_admm_gpu(TESLA_K40, None, OPTERON_6300, workloads=wl)
        fp32 = simulate_admm_gpu(
            TESLA_K40, None, OPTERON_6300, workloads=with_precision(wl, K40_FP32)
        )
        assert fp32.gpu_iteration_s < fp64.gpu_iteration_s

    def test_titanx_profile_more_aggressive(self):
        assert TITANX_FP32.compute_scale < K40_FP32.compute_scale + 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            PrecisionProfile("bad", compute_scale=0.0)
