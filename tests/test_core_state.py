"""Unit tests for ADMMState: storage, penalties, initialization."""

import numpy as np
import pytest

from repro.core.state import ADMMState


class TestConstruction:
    def test_shapes(self, chain_graph):
        s = ADMMState(chain_graph)
        assert s.x.shape == (chain_graph.edge_size,)
        assert s.z.shape == (chain_graph.z_size,)
        assert s.rho.shape == (chain_graph.num_edges,)

    def test_default_rho_alpha(self, chain_graph):
        s = ADMMState(chain_graph, rho=2.5, alpha=0.9)
        assert np.all(s.rho == 2.5)
        assert np.all(s.alpha == 0.9)


class TestPenalties:
    def test_scalar_rho(self, chain_graph):
        s = ADMMState(chain_graph)
        s.set_rho(3.0)
        assert np.all(s.rho == 3.0)

    def test_per_edge_rho(self, chain_graph):
        s = ADMMState(chain_graph)
        vals = np.linspace(1.0, 2.0, chain_graph.num_edges)
        s.set_rho(vals)
        np.testing.assert_array_equal(s.rho, vals)

    def test_invalid_rho(self, chain_graph):
        s = ADMMState(chain_graph)
        with pytest.raises(ValueError):
            s.set_rho(0.0)
        with pytest.raises(ValueError):
            s.set_rho(np.zeros(chain_graph.num_edges))
        with pytest.raises(ValueError):
            s.set_rho(np.ones(3))

    def test_invalid_alpha(self, chain_graph):
        s = ADMMState(chain_graph)
        with pytest.raises(ValueError):
            s.set_alpha(-1.0)

    def test_rho_slots_cache_invalidation(self, chain_graph):
        s = ADMMState(chain_graph, rho=1.0)
        slots1 = s.rho_slots
        assert np.all(slots1 == 1.0)
        s.set_rho(2.0)
        assert np.all(s.rho_slots == 2.0)

    def test_rho_slots_expand_per_edge(self, mixed_dims_graph):
        g = mixed_dims_graph
        s = ADMMState(g)
        vals = np.arange(1.0, g.num_edges + 1)
        s.set_rho(vals)
        expected = vals[g.slot_edge]
        np.testing.assert_array_equal(s.rho_slots, expected)

    def test_rho_den_matches_degree_sum(self, chain_graph):
        g = chain_graph
        s = ADMMState(g, rho=2.0)
        expected = 2.0 * np.repeat(g.var_degree, g.var_dims)
        np.testing.assert_allclose(s.rho_den, expected)


class TestInitialization:
    def test_init_random_in_bounds(self, chain_graph):
        s = ADMMState(chain_graph).init_random(0.2, 0.8, seed=1)
        for arr in (s.x, s.m, s.u, s.n, s.z):
            assert arr.min() >= 0.2 and arr.max() < 0.8

    def test_init_random_deterministic(self, chain_graph):
        a = ADMMState(chain_graph).init_random(seed=5)
        b = ADMMState(chain_graph).init_random(seed=5)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.z, b.z)

    def test_init_random_invalid_bounds(self, chain_graph):
        with pytest.raises(ValueError, match="low < high"):
            ADMMState(chain_graph).init_random(1.0, 1.0)

    def test_init_zeros(self, chain_graph):
        s = ADMMState(chain_graph).init_random(seed=2)
        s.init_zeros()
        assert np.all(s.x == 0) and np.all(s.z == 0)
        assert s.iteration == 0

    def test_init_from_z_broadcasts(self, mixed_dims_graph):
        g = mixed_dims_graph
        z = np.arange(g.z_size, dtype=float)
        s = ADMMState(g).init_from_z(z)
        np.testing.assert_array_equal(s.z, z)
        np.testing.assert_array_equal(s.x, z[g.flat_edge_to_z])
        np.testing.assert_array_equal(s.n, z[g.flat_edge_to_z])
        assert np.all(s.u == 0)

    def test_init_from_z_shape_check(self, chain_graph):
        with pytest.raises(ValueError, match="shape"):
            ADMMState(chain_graph).init_from_z(np.zeros(3))


class TestCopySolution:
    def test_copy_is_deep(self, chain_graph):
        s = ADMMState(chain_graph).init_random(seed=3)
        s.iteration = 7
        c = s.copy()
        c.x[0] += 1.0
        assert s.x[0] != c.x[0]
        assert c.iteration == 7

    def test_solution_splits_variables(self, mixed_dims_graph):
        s = ADMMState(mixed_dims_graph)
        s.z[:] = np.arange(mixed_dims_graph.z_size)
        sol = s.solution()
        assert [v.size for v in sol] == [3, 2, 1]
