"""Tests for the SIMT GPU and multicore CPU performance models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import packing_graph, star_graph
from repro.gpusim.cpumodel import (
    simulate_admm_cpu,
    simulate_parallel_loop,
    speedup_vs_cores,
)
from repro.gpusim.device import CPUSpec, DeviceSpec, OPTERON_6300, TESLA_K40
from repro.gpusim.kernel import KernelWorkload
from repro.gpusim.simt import (
    assign_blocks,
    best_ntb,
    serial_time,
    simulate_kernel,
    warp_times,
)
from repro.gpusim.workloads import CostModel, admm_workloads, simulate_admm_gpu
from dataclasses import replace


def uniform_workload(n=1000, cycles=100.0, bpi=32.0, access="contiguous"):
    return KernelWorkload(
        "test", np.full(n, cycles), np.full(n, bpi), access=access
    )


class TestDeviceSpecs:
    def test_k40_constants(self):
        assert TESLA_K40.num_sms == 15
        assert TESLA_K40.warp_size == 32
        assert TESLA_K40.total_cores == 15 * 192

    def test_validation(self):
        with pytest.raises(ValueError):
            replace(TESLA_K40, num_sms=0)
        with pytest.raises(ValueError):
            replace(TESLA_K40, clock_ghz=-1.0)
        with pytest.raises(ValueError):
            replace(TESLA_K40, cores_per_sm=100)  # not multiple of 32
        with pytest.raises(ValueError):
            replace(OPTERON_6300, cores=0)

    def test_opteron_constants(self):
        assert OPTERON_6300.cores == 32
        assert abs(OPTERON_6300.clock_ghz - 2.8) < 1e-12


class TestWarpPacking:
    def test_uniform_items_exact(self):
        work, crit = warp_times(np.full(64, 10.0), ntb=32, warp_size=32)
        # 2 blocks, 1 warp each, warp time = 10.
        np.testing.assert_allclose(work, [10.0, 10.0])
        np.testing.assert_allclose(crit, [10.0, 10.0])

    def test_divergence_is_max_over_lanes(self):
        cycles = np.full(32, 1.0)
        cycles[5] = 100.0
        work, crit = warp_times(cycles, ntb=32, warp_size=32)
        assert work[0] == 100.0  # one slow lane stalls the warp

    def test_partial_warp_still_full_slot(self):
        # 16 items at ntb=16: one warp with 16 active lanes, time = max.
        work16, _ = warp_times(np.full(16, 10.0), ntb=16, warp_size=32)
        work32, _ = warp_times(np.full(32, 10.0), ntb=32, warp_size=32)
        # Same per-block time for half the items: 50% lane waste.
        assert work16[0] == work32[0]

    def test_multi_warp_blocks(self):
        work, crit = warp_times(np.full(64, 7.0), ntb=64, warp_size=32)
        assert work.shape == (1,)
        assert work[0] == 14.0  # two warps summed
        assert crit[0] == 7.0

    def test_empty(self):
        work, crit = warp_times(np.zeros(0), ntb=32, warp_size=32)
        assert work.size == 0


class TestBlockAssignment:
    def test_fewer_blocks_than_sms(self):
        loads, _ = assign_blocks(np.array([5.0, 5.0]), num_sms=4)
        assert sorted(loads.tolist()) == [0.0, 0.0, 5.0, 5.0]

    def test_list_scheduling_balances(self):
        rng = np.random.default_rng(0)
        work = rng.uniform(1.0, 2.0, 1000)
        loads, _ = assign_blocks(work, num_sms=10)
        assert loads.max() / loads.mean() < 1.05

    def test_conservation(self):
        work = np.random.default_rng(1).uniform(0.5, 2.0, 500)
        loads, _ = assign_blocks(work, num_sms=7)
        assert abs(loads.sum() - work.sum()) < 1e-6


class TestSimulateKernel:
    def test_more_sms_never_slower(self):
        wl = uniform_workload(5000)
        t15 = simulate_kernel(TESLA_K40, wl, 32).time_s
        big = replace(TESLA_K40, num_sms=30)
        t30 = simulate_kernel(big, wl, 32).time_s
        assert t30 <= t15 + 1e-12

    def test_more_work_never_faster(self):
        a = simulate_kernel(TESLA_K40, uniform_workload(1000), 32).time_s
        b = simulate_kernel(TESLA_K40, uniform_workload(4000), 32).time_s
        assert b >= a

    def test_scaling_cycles_scales_compute(self):
        wl1 = uniform_workload(20000, cycles=100.0, bpi=0.001)
        wl2 = uniform_workload(20000, cycles=200.0, bpi=0.001)
        t1 = simulate_kernel(TESLA_K40, wl1, 32)
        t2 = simulate_kernel(TESLA_K40, wl2, 32)
        assert t2.compute_s > 1.5 * t1.compute_s

    def test_ntb_bounds_enforced(self):
        wl = uniform_workload(100)
        with pytest.raises(ValueError):
            simulate_kernel(TESLA_K40, wl, 0)
        with pytest.raises(ValueError):
            simulate_kernel(TESLA_K40, wl, 2048)

    def test_empty_workload_costs_launch_only(self):
        wl = KernelWorkload("e", np.zeros(0), np.zeros(0))
        t = simulate_kernel(TESLA_K40, wl, 32)
        assert t.time_s == pytest.approx(TESLA_K40.launch_overhead_us * 1e-6)

    def test_coalescing_hurts_memory_bound(self):
        good = uniform_workload(200000, cycles=1.0, bpi=64.0, access="contiguous")
        bad = uniform_workload(200000, cycles=1.0, bpi=64.0, access="scattered")
        tg = simulate_kernel(TESLA_K40, good, 32)
        tb = simulate_kernel(TESLA_K40, bad, 32)
        assert tb.memory_s > 4 * tg.memory_s

    def test_imbalance_reported_for_heterogeneous_blocks(self):
        cycles = np.ones(32 * 16)
        cycles[:32] = 1000.0  # one huge block
        wl = KernelWorkload("h", cycles, np.ones(cycles.size))
        t = simulate_kernel(TESLA_K40, wl, 32)
        assert t.sm_imbalance > 1.5

    @given(ntb=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]))
    @settings(max_examples=11, deadline=None)
    def test_time_positive_any_ntb(self, ntb):
        wl = uniform_workload(3000)
        t = simulate_kernel(TESLA_K40, wl, ntb)
        assert t.time_s > 0


class TestNtbSweep:
    def test_paper_shape_peak_at_32(self):
        g = packing_graph(300)
        wl = admm_workloads(g)
        best, timings = best_ntb(TESLA_K40, wl["x"])
        assert best == 32
        # below 32: monotone improvement (lane waste decreasing)
        assert timings[1].time_s > timings[8].time_s > timings[32].time_s
        # far above 32: worse than the peak (cache pressure)
        assert timings[256].time_s > timings[32].time_s

    def test_sweep_respects_device_limit(self):
        small = replace(TESLA_K40, max_threads_per_block=64)
        wl = uniform_workload(500)
        best, timings = best_ntb(small, wl)
        assert max(timings) <= 64


class TestSerialTime:
    def test_compute_bound(self):
        wl = uniform_workload(1000, cycles=1e6, bpi=1.0)
        t = serial_time(wl, OPTERON_6300)
        expected = 1000 * 1e6 / (OPTERON_6300.clock_hz * OPTERON_6300.serial_efficiency)
        assert t == pytest.approx(expected)

    def test_memory_bound(self):
        wl = uniform_workload(1000, cycles=1.0, bpi=1e6)
        t = serial_time(wl, OPTERON_6300)
        expected = 1000 * 1e6 / (OPTERON_6300.core_mem_bandwidth_gbs * 1e9)
        assert t == pytest.approx(expected)


class TestWorkloadTranslation:
    def test_five_kernels_present(self, chain_graph):
        wl = admm_workloads(chain_graph)
        assert set(wl) == {"x", "m", "z", "u", "n"}

    def test_item_counts_match_graph(self, chain_graph):
        wl = admm_workloads(chain_graph)
        assert wl["x"].n_items == chain_graph.num_factors
        assert wl["m"].n_items == chain_graph.num_edges
        assert wl["z"].n_items == chain_graph.num_vars

    def test_z_cost_scales_with_degree(self):
        g = star_graph(50)
        wl = admm_workloads(g)
        # hub (variable 0) must dominate.
        assert wl["z"].cycles[0] > 10 * wl["z"].cycles[1]

    def test_per_prox_cost_override(self, chain_graph):
        base = admm_workloads(chain_graph, CostModel())
        bumped = admm_workloads(
            chain_graph, CostModel(x_per_slot_by_prox={"diag_quad": 400.0})
        )
        assert bumped["x"].total_cycles > base["x"].total_cycles

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            KernelWorkload("bad", np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            KernelWorkload("bad", np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            KernelWorkload("bad", -np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            KernelWorkload("bad", np.ones(3), np.ones(3), access="warp")


class TestEndToEndGPUSim:
    def test_speedup_grows_then_saturates(self):
        speeds = []
        for n in (20, 100, 400):
            res = simulate_admm_gpu(
                TESLA_K40, packing_graph(n), OPTERON_6300, ntb=32
            )
            speeds.append(res.combined_speedup)
        assert speeds[0] < speeds[1] <= speeds[2] * 1.05

    def test_packing_combined_speedup_in_paper_band(self):
        res = simulate_admm_gpu(
            TESLA_K40, packing_graph(500), OPTERON_6300, ntb=32
        )
        # Paper: 10-18x for the GPU across applications (16x packing).
        assert 8.0 <= res.combined_speedup <= 25.0

    def test_fractions_sum_to_one(self):
        res = simulate_admm_gpu(TESLA_K40, packing_graph(100), OPTERON_6300)
        for where in ("gpu", "serial"):
            assert abs(sum(res.fractions(where).values()) - 1.0) < 1e-9

    def test_per_kernel_ntb_dict(self):
        g = packing_graph(50)
        res = simulate_admm_gpu(
            TESLA_K40, g, OPTERON_6300,
            ntb={"x": 32, "m": 64, "z": 16, "u": 32, "n": 32},
        )
        assert res.timings["m"].ntb == 64

    def test_ntb_dict_must_cover_all(self):
        g = packing_graph(20)
        with pytest.raises(ValueError, match="missing"):
            simulate_admm_gpu(TESLA_K40, g, OPTERON_6300, ntb={"x": 32})


class TestCPUModel:
    def test_two_cores_faster_than_one(self):
        wl = uniform_workload(100000, cycles=50.0, bpi=1.0)
        t1 = simulate_parallel_loop(OPTERON_6300, wl, 1).time_s
        t2 = simulate_parallel_loop(OPTERON_6300, wl, 2).time_s
        assert t2 < t1

    def test_memory_ceiling_saturates(self):
        wl = uniform_workload(500000, cycles=2.0, bpi=64.0)
        t8 = simulate_parallel_loop(OPTERON_6300, wl, 8).time_s
        t32 = simulate_parallel_loop(OPTERON_6300, wl, 32).time_s
        # Bandwidth-bound: no further gain from 8 -> 32 cores.
        assert t32 >= t8 * 0.95

    def test_overhead_hurts_tiny_loops(self):
        wl = uniform_workload(64, cycles=10.0, bpi=1.0)
        t1 = simulate_parallel_loop(OPTERON_6300, wl, 1).time_s
        t32 = simulate_parallel_loop(OPTERON_6300, wl, 32).time_s
        assert t32 > t1  # the paper's "more cores actually hurt"

    def test_lpt_beats_contiguous_on_imbalanced(self):
        g = star_graph(400)
        wl = admm_workloads(g)["z"]
        tc = simulate_parallel_loop(OPTERON_6300, wl, 8, balance="contiguous")
        tl = simulate_parallel_loop(OPTERON_6300, wl, 8, balance="lpt")
        assert tl.compute_s <= tc.compute_s

    def test_core_bounds(self):
        wl = uniform_workload(10)
        with pytest.raises(ValueError):
            simulate_parallel_loop(OPTERON_6300, wl, 0)
        with pytest.raises(ValueError):
            simulate_parallel_loop(OPTERON_6300, wl, 64)
        with pytest.raises(ValueError):
            simulate_parallel_loop(OPTERON_6300, wl, 4, balance="nope")

    def test_speedup_curve_shape(self):
        g = packing_graph(200)
        wl = admm_workloads(g)
        curve = speedup_vs_cores(OPTERON_6300, wl, [1, 2, 8, 32])
        assert curve[1] == pytest.approx(1.0, abs=1e-9)
        assert curve[2] > 1.5
        # Saturation in the paper's 5-9x multicore band.
        assert 3.0 < curve[32] < 12.0

    def test_simulate_admm_cpu_fractions(self):
        g = packing_graph(100)
        res = simulate_admm_cpu(OPTERON_6300, admm_workloads(g), 4)
        assert abs(sum(res.fractions().values()) - 1.0) < 1e-9
        assert res.combined_speedup > 1.0


class TestCalibration:
    def test_scale_to_measurements(self, chain_graph):
        from repro.gpusim.calibrate import (
            measure_kernel_seconds,
            measured_fractions,
            scale_workloads_to_measurements,
        )
        from repro.backends.vectorized import VectorizedBackend

        meas = measure_kernel_seconds(chain_graph, VectorizedBackend(), iterations=3)
        assert set(meas) == {"x", "m", "z", "u", "n"}
        assert all(v >= 0 for v in meas.values())
        wl = admm_workloads(chain_graph)
        scaled = scale_workloads_to_measurements(wl, meas, OPTERON_6300)
        eff = OPTERON_6300.clock_hz * OPTERON_6300.serial_efficiency
        for k, w in scaled.items():
            if meas[k] > 0:
                assert w.total_cycles / eff == pytest.approx(meas[k], rel=1e-9)
        fr = measured_fractions(meas)
        assert abs(sum(fr.values()) - 1.0) < 1e-9

    def test_zero_measurements_keep_nominal(self, chain_graph):
        from repro.gpusim.calibrate import scale_workloads_to_measurements

        wl = admm_workloads(chain_graph)
        scaled = scale_workloads_to_measurements(
            wl, {k: 0.0 for k in wl}, OPTERON_6300
        )
        for k in wl:
            assert scaled[k].total_cycles == wl[k].total_cycles
