"""Tests for the benchmark harness, reporting, and the Figure-5 table."""

import os

import numpy as np
import pytest

from repro.backends.serial import SerialBackend
from repro.backends.vectorized import VectorizedBackend
from repro.bench.harness import compare_backends, measure_backend
from repro.bench.reporting import SeriesTable, fresh_report, results_path
from repro.bench.solver_table import (
    FIGURE5_SOLVERS,
    build_table,
    open_source_parallel_count,
)
from repro.bench.workloads import (
    mpc_graph,
    packing_graph,
    star_graph,
    svm_graph,
)


class TestHarness:
    def test_measure_backend_reports_all_kernels(self, chain_graph):
        m = measure_backend(chain_graph, VectorizedBackend(), iterations=3)
        assert m.iterations == 3
        assert m.total_seconds > 0
        assert set(m.kernel_seconds) == {"x", "m", "z", "u", "n"}
        fr = m.kernel_fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-9

    def test_compare_backends_speedup_positive(self, chain_graph):
        cmp = compare_backends(
            chain_graph, SerialBackend(), VectorizedBackend(), 2, 4
        )
        assert cmp.combined_speedup > 0
        ks = cmp.kernel_speedups()
        assert set(ks) == {"x", "m", "z", "u", "n"}

    def test_vectorized_beats_serial_on_large_graph(self):
        g = packing_graph(25)
        cmp = compare_backends(g, SerialBackend(), VectorizedBackend(), 2, 10)
        assert cmp.combined_speedup > 3.0

    def test_invalid_iterations(self, chain_graph):
        with pytest.raises(ValueError):
            measure_backend(chain_graph, VectorizedBackend(), iterations=0)

    def test_measure_backend_repeats(self, chain_graph):
        m = measure_backend(chain_graph, VectorizedBackend(), iterations=3, repeats=3)
        assert m.iterations == 3
        assert m.total_seconds > 0
        assert set(m.kernel_seconds) == {"x", "m", "z", "u", "n"}
        with pytest.raises(ValueError):
            measure_backend(chain_graph, VectorizedBackend(), iterations=1, repeats=0)


class TestWorkloadBuilders:
    def test_packing_graph_counts(self):
        g = packing_graph(6)
        assert g.num_edges == 2 * 36 - 6 + 2 * 6 * 3

    def test_mpc_graph_counts(self):
        g = mpc_graph(12)
        assert g.num_edges == 3 * 12 + 2

    def test_svm_graph_counts(self):
        g = svm_graph(20)
        assert g.num_edges == 6 * 20 - 2

    def test_star_graph_hub_degree(self):
        g = star_graph(9)
        assert g.var_degree[0] == 9
        assert np.all(g.var_degree[1:] == 1)


class TestReporting:
    def test_table_rendering(self):
        t = SeriesTable("demo", ("N", "time", "speedup"))
        t.add_row(10, 0.123, 4.5)
        t.add_row(100, 1.5, 7.25)
        t.add_note("hello")
        text = t.render()
        assert "demo" in text and "speedup" in text and "note: hello" in text

    def test_row_arity_checked(self):
        t = SeriesTable("demo", ("a", "b"))
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_emit_appends_to_file(self, tmp_path):
        path = str(tmp_path / "out" / "report.txt")
        t = SeriesTable("demo", ("a",))
        t.add_row(1)
        t.emit(path)
        t.emit(path)
        content = open(path).read()
        assert content.count("== demo ==") == 2

    def test_emit_replaces_stale_file_on_first_write(self, tmp_path):
        # A rerun must replace its own report rather than appending to a
        # previous run's content — and only ever touch the file it emits.
        path = str(tmp_path / "report.txt")
        with open(path, "w") as fh:
            fh.write("== stale run ==\n")
        t = SeriesTable("demo", ("a",))
        t.add_row(1)
        t.emit(path)
        content = open(path).read()
        assert "stale run" not in content
        assert content.count("== demo ==") == 1

    def test_fresh_report_truncates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        p = fresh_report("x.txt", "HEADER")
        assert open(p).read().startswith("HEADER")
        p2 = fresh_report("x.txt", "NEW")
        assert "HEADER" not in open(p2).read()

    def test_results_path_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert results_path("a.txt") == os.path.join(str(tmp_path), "a.txt")


class TestSolverTable:
    def test_paper_claim_no_open_source_parallel(self):
        # "most open-source solvers cannot exploit parallelism" — in Fig 5,
        # none of the open ones do.
        assert open_source_parallel_count() == 0

    def test_commercial_solvers_have_smmp(self):
        commercial = [e for e in FIGURE5_SOLVERS if not e.open_source]
        assert commercial and all("SMMP" in e.parallelism for e in commercial)

    def test_eleven_rows_as_printed(self):
        assert len(FIGURE5_SOLVERS) == 11

    def test_table_includes_paradmm_row(self):
        text = build_table(include_paradmm=True).render()
        assert "parADMM" in text and "GPU" in text

    def test_table_without_paradmm(self):
        text = build_table(include_paradmm=False).render()
        assert "parADMM" not in text
